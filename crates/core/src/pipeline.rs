//! The cycle-approximate pipeline simulator (paper, §3 and Figure 4).
//!
//! The TM3270 pipeline is statically scheduled: there are **no hardware
//! interlocks**, so operation results become architecturally visible
//! exactly `latency` cycles after issue, and jump effects are delayed by
//! the architectural delay slots (5 on the TM3270, 3 on the TM3260). The
//! simulator models this faithfully — a mis-scheduled program reads stale
//! values, exactly like on silicon — on top of the timing contributed by
//! the instruction cache (stages I1–I3), the data cache and write buffer
//! (stages X1–X6, §4), the prefetch unit and the DRAM channel.

use crate::config::MachineConfig;
use crate::snapshot::Snapshot;
use std::collections::VecDeque;
use tm3270_encode::{
    decode_program_detailed, encode_program, superblocks, DecodeFault, EncodedProgram,
    SnapshotError, SnapshotReader, SnapshotWriter,
};
use tm3270_isa::{
    execute, ld_frac8_value, pure_fn, super_ld32_words, value::sign_extend, DataMemory, ExecError,
    ExecResult, Op, Opcode, Program, PureFn, Reg, RegFile,
};
use tm3270_mem::{FullStats, MemorySystem, Region};
use tm3270_obs::{SinkHandle, StallCause, TraceEvent};

/// Default number of recent [`TraceRecord`]s the machine retains for
/// crash reports (the ring buffer of [`Machine::recent_trace`]);
/// configurable per machine via `MachineConfig::trace_ring`.
pub const TRACE_RING: usize = 16;

/// Default livelock watchdog: a run aborts with [`SimError::NoProgress`]
/// after this many cycles without a single executed (guard-true)
/// non-jump operation — pure control flow does not count as progress.
/// Generous enough that delay-slot nop padding and worst-case memory
/// stalls never trip it on real kernels.
pub const DEFAULT_WATCHDOG_CYCLES: u64 = 1_000_000;

/// Errors from constructing or running a simulation.
///
/// Every abnormal outcome of the decode → execute → memory path is a
/// variant here: the simulator never panics on program input, however
/// corrupted — it degrades into one of these, from which
/// [`Machine::crash_report`] can render a post-mortem.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The program could not be encoded (assembler/encoder bug).
    Encode(tm3270_encode::EncodeError),
    /// The binary image could not be decoded back into a program
    /// (corrupted image).
    Decode {
        /// VLIW instruction index at which decoding failed.
        pc: usize,
        /// The underlying decode error.
        cause: tm3270_encode::EncodeError,
    },
    /// The image names an opcode that does not exist.
    InvalidOpcode {
        /// VLIW instruction index of the bad field.
        pc: usize,
        /// The opcode field as read from the image.
        code: u16,
    },
    /// The image names a register outside the 128-entry register file.
    RegisterOutOfRange {
        /// VLIW instruction index of the bad field.
        pc: usize,
        /// The register index as read from the image.
        index: u8,
    },
    /// A memory access violated a strict memory's alignment policy.
    MisalignedAccess {
        /// VLIW instruction index of the access.
        pc: usize,
        /// Effective byte address.
        addr: u32,
        /// Access width in bytes.
        size: u32,
    },
    /// A memory access fell outside a strict memory's bounds.
    OutOfBoundsAccess {
        /// VLIW instruction index of the access.
        pc: usize,
        /// Effective byte address.
        addr: u32,
        /// Access width in bytes.
        size: u32,
    },
    /// The livelock watchdog fired: no state-changing (non-jump)
    /// operation executed for too long — e.g. a jump-only loop in a
    /// corrupted program that will spin forever without computing.
    NoProgress {
        /// VLIW instruction index where the watchdog fired.
        pc: usize,
        /// Cycles elapsed since the last executed non-jump operation.
        cycles: u64,
    },
    /// The cycle budget was exhausted before the program halted.
    CycleLimit {
        /// The exhausted budget.
        limit: u64,
    },
    /// A branch was executed inside another branch's delay slots (the
    /// builder never emits this; hand-built programs might).
    BranchInDelaySlot {
        /// Instruction index of the offending branch.
        at: usize,
    },
}

impl SimError {
    /// A short stable name for the variant (campaign tallies, reports).
    pub fn kind(&self) -> &'static str {
        match self {
            SimError::Encode(_) => "Encode",
            SimError::Decode { .. } => "Decode",
            SimError::InvalidOpcode { .. } => "InvalidOpcode",
            SimError::RegisterOutOfRange { .. } => "RegisterOutOfRange",
            SimError::MisalignedAccess { .. } => "MisalignedAccess",
            SimError::OutOfBoundsAccess { .. } => "OutOfBoundsAccess",
            SimError::NoProgress { .. } => "NoProgress",
            SimError::CycleLimit { .. } => "CycleLimit",
            SimError::BranchInDelaySlot { .. } => "BranchInDelaySlot",
        }
    }
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Encode(e) => write!(f, "program encoding failed: {e}"),
            SimError::Decode { pc, cause } => {
                write!(f, "image undecodable at instruction {pc}: {cause}")
            }
            SimError::InvalidOpcode { pc, code } => {
                write!(f, "invalid opcode {code:#04x} at instruction {pc}")
            }
            SimError::RegisterOutOfRange { pc, index } => {
                write!(f, "register index {index} out of range at instruction {pc}")
            }
            SimError::MisalignedAccess { pc, addr, size } => {
                write!(
                    f,
                    "misaligned {size}-byte access at {addr:#010x} (instruction {pc})"
                )
            }
            SimError::OutOfBoundsAccess { pc, addr, size } => {
                write!(
                    f,
                    "out-of-bounds {size}-byte access at {addr:#010x} (instruction {pc})"
                )
            }
            SimError::NoProgress { pc, cycles } => {
                write!(
                    f,
                    "watchdog: no operation executed for {cycles} cycles (pc {pc})"
                )
            }
            SimError::CycleLimit { limit } => {
                write!(f, "cycle limit of {limit} exhausted (runaway program?)")
            }
            SimError::BranchInDelaySlot { at } => {
                write!(f, "branch inside delay slots at instruction {at}")
            }
        }
    }
}

impl std::error::Error for SimError {}

impl From<tm3270_encode::EncodeError> for SimError {
    fn from(e: tm3270_encode::EncodeError) -> SimError {
        SimError::Encode(e)
    }
}

impl From<DecodeFault> for SimError {
    fn from(f: DecodeFault) -> SimError {
        match f.cause {
            tm3270_encode::EncodeError::InvalidOpcode { code } => {
                SimError::InvalidOpcode { pc: f.instr, code }
            }
            tm3270_encode::EncodeError::RegisterOutOfRange { index } => {
                SimError::RegisterOutOfRange { pc: f.instr, index }
            }
            cause => SimError::Decode { pc: f.instr, cause },
        }
    }
}

/// Statistics of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunStats {
    /// Total cycles.
    pub cycles: u64,
    /// VLIW instructions issued.
    pub instrs: u64,
    /// Operations contained in issued instructions (including
    /// guarded-false operations).
    pub ops: u64,
    /// Operations whose guard was true.
    pub exec_ops: u64,
    /// Branch operations executed / taken.
    pub branches: u64,
    /// Taken branches.
    pub taken_branches: u64,
    /// Cycles lost to instruction-fetch stalls.
    pub ifetch_stall_cycles: u64,
    /// Cycles lost to data-side stalls.
    pub data_stall_cycles: u64,
    /// CPU clock in MHz, for wall-clock conversions.
    pub freq_mhz: f64,
    /// Memory-system statistics snapshot at the end of the run.
    pub mem: FullStats,
}

impl RunStats {
    /// Cycles per VLIW instruction (paper §5.2; 1.0 = no stalls).
    pub fn cpi(&self) -> f64 {
        self.cycles as f64 / self.instrs.max(1) as f64
    }

    /// Operations per VLIW instruction (paper §5.2: "effective operations
    /// per VLIW instruction").
    pub fn opi(&self) -> f64 {
        self.exec_ops as f64 / self.instrs.max(1) as f64
    }

    /// Wall-clock execution time in microseconds at the configured clock.
    pub fn time_us(&self) -> f64 {
        self.cycles as f64 / self.freq_mhz
    }
}

/// One traced VLIW instruction execution (see [`Machine::run_traced`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Cycle at which the instruction issued (after front-end stalls).
    pub cycle: u64,
    /// Instruction index executed.
    pub pc: usize,
    /// Operations whose guard was true.
    pub ops_executed: u8,
    /// Front-end stall cycles paid before issue.
    pub ifetch_stall: u64,
    /// Data-side stall cycles paid by this instruction.
    pub data_stall: u64,
    /// Target of a taken branch, if any (effective after the delay slots).
    pub branch_taken: Option<usize>,
}

/// Options for one [`Machine::run_with`] call: the unified run entry
/// point behind [`Machine::run`], [`Machine::run_reported`] and
/// [`Machine::run_traced`].
///
/// Build options fluently:
///
/// ```
/// use tm3270_core::RunOptions;
/// let mut seen = 0u64;
/// let mut on_instr = |_rec: &tm3270_core::TraceRecord| seen += 1;
/// let opts = RunOptions::budget(1_000_000)
///     .watchdog(10_000)
///     .with_report()
///     .observe(&mut on_instr);
/// # let _ = opts;
/// ```
pub struct RunOptions<'a> {
    /// Cycle budget: the run ends in [`SimError::CycleLimit`] when the
    /// machine's cycle counter reaches it before the program halts.
    pub budget: u64,
    /// Livelock watchdog override (see [`Machine::set_watchdog`]);
    /// `None` keeps the machine's current setting.
    pub watchdog: Option<u64>,
    /// Capture a [`CrashReport`](crate::CrashReport) snapshot into
    /// [`RunOutcome::report`] when the run fails.
    pub report: bool,
    /// Per-instruction observer, invoked with every executed
    /// [`TraceRecord`].
    pub trace: Option<&'a mut dyn FnMut(&TraceRecord)>,
}

impl std::fmt::Debug for RunOptions<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunOptions")
            .field("budget", &self.budget)
            .field("watchdog", &self.watchdog)
            .field("report", &self.report)
            .field("trace", &self.trace.is_some())
            .finish()
    }
}

impl RunOptions<'static> {
    /// Options with cycle budget `budget` and everything else off.
    pub fn budget(budget: u64) -> RunOptions<'static> {
        RunOptions {
            budget,
            watchdog: None,
            report: false,
            trace: None,
        }
    }
}

impl<'a> RunOptions<'a> {
    /// Sets the livelock watchdog for this run (and subsequent ones, like
    /// [`Machine::set_watchdog`]).
    pub fn watchdog(mut self, cycles: u64) -> RunOptions<'a> {
        self.watchdog = Some(cycles);
        self
    }

    /// Requests a [`CrashReport`](crate::CrashReport) snapshot in
    /// [`RunOutcome::report`] if the run fails.
    pub fn with_report(mut self) -> RunOptions<'a> {
        self.report = true;
        self
    }

    /// Attaches a per-instruction observer (the [`Machine::run_traced`]
    /// callback).
    pub fn observe<'b>(self, trace: &'b mut dyn FnMut(&TraceRecord)) -> RunOptions<'b>
    where
        'a: 'b,
    {
        RunOptions {
            budget: self.budget,
            watchdog: self.watchdog,
            report: self.report,
            trace: Some(trace),
        }
    }
}

/// The outcome of one [`Machine::run_with`] call.
#[derive(Debug)]
pub struct RunOutcome {
    /// Final run statistics on success, the typed error otherwise.
    pub result: Result<RunStats, SimError>,
    /// Post-mortem snapshot: present exactly when the run failed and
    /// [`RunOptions::with_report`] was set.
    pub report: Option<Box<crate::report::CrashReport>>,
}

impl RunOutcome {
    /// The run statistics, if the program halted within budget.
    pub fn stats(&self) -> Option<&RunStats> {
        self.result.as_ref().ok()
    }

    /// Unwraps into the plain [`Machine::run`]-shaped result, discarding
    /// any captured report.
    ///
    /// # Errors
    ///
    /// Propagates the run's [`SimError`].
    pub fn into_result(self) -> Result<RunStats, SimError> {
        self.result
    }
}

/// One predecoded micro-op of the issue plan: a flattened occupied slot
/// of a VLIW instruction with everything the dispatch loop would
/// otherwise re-derive per step — the pre-resolved writeback latency
/// ([`IssueModel::latency`](tm3270_isa::IssueModel::latency)), the issue
/// slot and the jump flag. `Op` is `Copy`, so the hot loop copies plan
/// entries to locals instead of borrowing across the execute call.
#[derive(Debug, Clone, Copy)]
struct PlannedOp {
    op: Op,
    slot: u8,
    latency: u8,
    is_jump: bool,
    /// Specialized register-pure evaluator
    /// ([`pure_fn`](tm3270_isa::pure_fn)): present for single-destination
    /// operations with no memory traffic and no control flow, letting the
    /// fused dispatch loop skip the full opcode match and `ExecResult`
    /// plumbing. `None` routes the op through [`execute`] unchanged.
    pure: Option<PureFn>,
    /// Pre-decoded shape of a simple load/store, the memory-side
    /// analogue of `pure`: the fused loop computes the address and calls
    /// the memory system directly instead of going through the full
    /// [`execute`] match. `None` for everything else (cache control,
    /// prefetch MMIO) — those take the generic path.
    fast_mem: Option<FastMem>,
    /// Whether the op touches the memory unit at all
    /// ([`Opcode::is_mem`]): the fused loop must close any open
    /// line-resident window and start full memory-system timing before
    /// dispatching a guard-true memory op through the generic path.
    mem: bool,
}

/// Addressing/width shape of a directly dispatched memory operation;
/// see [`PlannedOp::fast_mem`]. Covers the `ld*`/`uld*`/`st*` scalar
/// opcodes plus the two multi-byte load super-ops (`super_ld32r`,
/// `ld_frac8`) whose semantics are "compute address, move a fixed byte
/// count, derive the destination value(s)" — byte-for-byte the
/// `execute` arms they replace (the value derivations are the shared
/// [`ld_frac8_value`]/[`super_ld32_words`] helpers). Everything else
/// (cache control, prefetch MMIO) takes the generic path.
#[derive(Debug, Clone, Copy)]
enum FastMem {
    /// Scalar load. `indexed` selects register (`*r`) vs displacement
    /// (`*d`) addressing; `sext` marks the signed variants.
    Load {
        bytes: u8,
        sext: bool,
        indexed: bool,
    },
    /// Scalar displacement store of 1/2/4 bytes.
    Store { bytes: u8 },
    /// `super_ld32r`: an 8-byte indexed load feeding two destination
    /// words with big-endian byte placement (Table 2).
    SuperLoad,
    /// `ld_frac8`: the 5-byte collapsed load with fractional
    /// interpolation (§2.2.2).
    FracLoad,
}

/// Classifies an opcode for the fused fast-memory path.
fn fast_mem(op: Opcode) -> Option<FastMem> {
    use Opcode::*;
    let f = |bytes, sext, indexed| FastMem::Load {
        bytes,
        sext,
        indexed,
    };
    Some(match op {
        Ld8d => f(1, true, false),
        Uld8d => f(1, false, false),
        Ld16d => f(2, true, false),
        Uld16d => f(2, false, false),
        Ld32d => f(4, false, false),
        Ld8r => f(1, true, true),
        Uld8r => f(1, false, true),
        Ld16r => f(2, true, true),
        Uld16r => f(2, false, true),
        Ld32r => f(4, false, true),
        St8d => FastMem::Store { bytes: 1 },
        St16d => FastMem::Store { bytes: 2 },
        St32d => FastMem::Store { bytes: 4 },
        SuperLd32r => FastMem::SuperLoad,
        LdFrac8 => FastMem::FracLoad,
        _ => return None,
    })
}

/// Per-instruction metadata of the issue plan: the occupied-slot range
/// in [`IssuePlan::ops`] plus the instruction's 32-byte-aligned fetch
/// chunk window (first and last chunk base address), precomputed from
/// the encoded image so the front end does no offset arithmetic per
/// step.
#[derive(Debug, Clone, Copy)]
struct PlannedInstr {
    start: u32,
    end: u32,
    first_chunk: u32,
    last_chunk: u32,
    /// Whether any op of the instruction touches the data cache (loads,
    /// stores, cache control, prefetch MMIO). Instructions without
    /// memory traffic cannot produce data stalls, so the fused loop
    /// skips the per-instruction memory-clock round trip for them
    /// (unless a prefetch is in flight, whose completion must still be
    /// absorbed on the exact cycle it would have been).
    has_mem: bool,
}

/// The predecoded issue plan: the architectural [`Program`] lowered at
/// machine-construction time into dense arrays the per-step path can
/// index directly — no `Instr` clone, no `ops()` filter-iterator, no
/// per-op latency lookup on the hot path. The `Program` itself stays
/// authoritative for traces, crash reports and the ISA tools; the plan
/// is a pure execution cache and never escapes the machine.
#[derive(Debug, Clone)]
struct IssuePlan {
    ops: Vec<PlannedOp>,
    instrs: Vec<PlannedInstr>,
}

impl IssuePlan {
    fn lower(
        program: &Program,
        image: &EncodedProgram,
        issue: &tm3270_isa::IssueModel,
    ) -> IssuePlan {
        let mut ops = Vec::new();
        let mut instrs = Vec::with_capacity(program.instrs.len());
        for (pc, instr) in program.instrs.iter().enumerate() {
            let start = ops.len() as u32;
            let mut has_mem = false;
            for (slot, op) in instr.ops() {
                has_mem |= op.opcode.is_mem();
                ops.push(PlannedOp {
                    op: *op,
                    slot: slot as u8,
                    latency: issue.latency(op.opcode) as u8,
                    is_jump: op.opcode.is_jump(),
                    pure: pure_fn(op.opcode),
                    fast_mem: fast_mem(op.opcode),
                    mem: op.opcode.is_mem(),
                });
            }
            let addr = image.offsets[pc];
            let len = image.instr_size(pc).max(1);
            instrs.push(PlannedInstr {
                start,
                end: ops.len() as u32,
                first_chunk: addr & !31,
                last_chunk: addr.wrapping_add(len - 1) & !31,
                has_mem,
            });
        }
        IssuePlan { ops, instrs }
    }
}

/// Precomputed metadata of one superblock: a maximal straight-line run
/// of VLIW instructions between jump-target boundaries (see
/// [`tm3270_encode::BlockSpan`]), annotated at machine construction
/// with everything the fused steady-state loop and the profiling tools
/// need — per-block register read/write sets, issue-slot and latency
/// aggregates, the fetch-chunk span and the memory-op map.
///
/// Control can only *enter* a block at `head` (jumps land exclusively
/// on targets); it can leave anywhere, including by delay slots that
/// straddle the boundary into the following block. Available via
/// [`Machine::superblock_info`]; purely descriptive — mutating nothing,
/// observing nothing at run time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuperblockInfo {
    /// First VLIW instruction of the block (a jump target, or 0).
    pub head: usize,
    /// One past the last instruction of the block.
    pub end: usize,
    /// Micro-ops in the block (guard-false ops included).
    pub ops: u32,
    /// Occupied issue slots (two-slot super-ops count both slots).
    pub slots: u32,
    /// Operations on the load or store units — the block's memory-op
    /// count. Their timing depends on `mem` state, so instructions
    /// carrying them always take the generic dispatch path.
    pub mem_ops: u32,
    /// Jump operations in the block.
    pub jumps: u32,
    /// Largest writeback latency of any op in the block: the in-flight
    /// result window a whole-block commit has to respect.
    pub max_latency: u8,
    /// First 32-byte-aligned fetch chunk the block touches.
    pub first_chunk: u32,
    /// Last 32-byte-aligned fetch chunk the block touches.
    pub last_chunk: u32,
    /// 128-bit set of registers the block reads (guards and sources).
    pub reg_reads: [u64; 2],
    /// 128-bit set of registers the block writes (destinations).
    pub reg_writes: [u64; 2],
    /// VLIW instruction indices (absolute) carrying at least one
    /// memory-unit op — the block's memory-op map.
    pub mem_pcs: Vec<u32>,
}

impl SuperblockInfo {
    /// Number of VLIW instructions in the block — also the block's
    /// minimum cycle cost (one issue per cycle when nothing stalls).
    pub fn len(&self) -> usize {
        self.end - self.head
    }

    /// Whether the block is empty (never true for discovered blocks).
    pub fn is_empty(&self) -> bool {
        self.end <= self.head
    }

    /// Whether the block reads register `r` (as a source or guard).
    pub fn reads_reg(&self, r: Reg) -> bool {
        self.reg_reads[(r.index() >> 6) & 1] >> (r.index() & 63) & 1 == 1
    }

    /// Whether the block writes register `r`.
    pub fn writes_reg(&self, r: Reg) -> bool {
        self.reg_writes[(r.index() >> 6) & 1] >> (r.index() & 63) & 1 == 1
    }
}

/// Lowers the discovered block spans into [`SuperblockInfo`] records by
/// aggregating over the already-lowered issue plan.
fn lower_superblocks(program: &Program, plan: &IssuePlan) -> Vec<SuperblockInfo> {
    superblocks(program)
        .into_iter()
        .map(|span| {
            let mut info = SuperblockInfo {
                head: span.head,
                end: span.end,
                ops: 0,
                slots: 0,
                mem_ops: 0,
                jumps: 0,
                max_latency: 0,
                first_chunk: plan.instrs[span.head].first_chunk,
                last_chunk: plan.instrs[span.end - 1].last_chunk,
                reg_reads: [0; 2],
                reg_writes: [0; 2],
                mem_pcs: Vec::new(),
            };
            let read = |info: &mut SuperblockInfo, r: Reg| {
                info.reg_reads[(r.index() >> 6) & 1] |= 1u64 << (r.index() & 63);
            };
            for pc in span.head..span.end {
                let PlannedInstr { start, end, .. } = plan.instrs[pc];
                let mut has_mem = false;
                for po in &plan.ops[start as usize..end as usize] {
                    info.ops += 1;
                    info.slots += if po.op.opcode.is_two_slot() { 2 } else { 1 };
                    info.max_latency = info.max_latency.max(po.latency);
                    if po.is_jump {
                        info.jumps += 1;
                    }
                    if po.op.opcode.is_mem() {
                        info.mem_ops += 1;
                        has_mem = true;
                    }
                    read(&mut info, po.op.guard);
                    for &r in po.op.sources() {
                        read(&mut info, r);
                    }
                    for &r in po.op.dests() {
                        info.reg_writes[(r.index() >> 6) & 1] |= 1u64 << (r.index() & 63);
                    }
                }
                if has_mem {
                    info.mem_pcs.push(pc as u32);
                }
            }
            info
        })
        .collect()
}

/// Fused-engine telemetry: how many VLIW instructions ran on the fused
/// superblock path versus the cycle-accurate fallback path (see
/// [`Machine::engine_telemetry`]). Advisory counters — they are not part
/// of [`RunStats`], not serialized into snapshots, and two runs that
/// split the work differently between the paths still produce identical
/// architectural results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineTelemetry {
    /// Instructions executed by the fused dispatch loop.
    pub fused_instrs: u64,
    /// Instructions executed by `step_record` (sink attached, observer
    /// attached, untrusted image, or explicit single-stepping).
    pub fallback_instrs: u64,
    /// Demand accesses and cache-control operations the fused loop
    /// routed through the full `MemorySystem` model (one per guarded
    /// memory-unit op taking the `load_le`/`store_le`/`execute` path).
    /// Divided by `fused_instrs` this is the "calls per instruction"
    /// cost metric of EXPERIMENTS.md §Simulator throughput.
    pub mem_calls: u64,
    /// Loads and stores serviced raw inside a line-resident access
    /// window (`MemorySystem::try_open_window`) — accesses that skipped
    /// the full memory model entirely.
    pub window_hits: u64,
    /// Line-resident windows closed (committed back to the memory
    /// system): every revocation cause — window-missing access, generic
    /// memory op, seam flush — lands here.
    pub window_revocations: u64,
}

/// Ring capacity of the writeback scoreboard, in landing slots. Must
/// exceed the largest writeback latency
/// ([`IssueModel::max_latency`](tm3270_isa::IssueModel::max_latency),
/// 17 for the FTOUGH unit): a write pushed at instruction `i` lands at
/// `i + latency`, and slots at or below `i` have always been drained, so
/// live landing slots span less than `WRITE_RING` and never alias.
const WRITE_RING: usize = 32;

/// Per-bucket capacity reserved up front. An instruction contributes at
/// most 10 writes (5 slots × 2 destinations) and at most one
/// instruction per distinct latency value ({1, 2, 3, 4, 6, 17} — see
/// [`IssueModel::latency`](tm3270_isa::IssueModel::latency)) can land
/// in the same slot, so 60 is a hard bound and steady-state commits
/// never grow a bucket.
const WRITE_BUCKET_CAP: usize = 64;

/// The cycle-bucketed writeback scoreboard: in-flight register results
/// bucketed by landing slot modulo [`WRITE_RING`]. Landing slots are
/// counted in *issued instructions*, not raw cycles — a stall freezes
/// the whole pipeline (there are no interlocks), so in-flight results
/// advance in lock-step with issue. The per-step commit drains exactly
/// one bucket (the current instruction slot): O(1), no scan of
/// unrelated in-flight writes and no allocation.
#[derive(Debug)]
struct WriteRing {
    buckets: [Vec<(Reg, u32)>; WRITE_RING],
    /// Total entries across all buckets (so empty commits are a single
    /// compare).
    pending: usize,
    /// The lowest landing slot not yet drained. Advanced past `upto` on
    /// every commit — even empty ones — so a later push can never alias
    /// a stale bucket.
    next: u64,
}

impl WriteRing {
    fn new() -> WriteRing {
        WriteRing {
            buckets: std::array::from_fn(|_| Vec::with_capacity(WRITE_BUCKET_CAP)),
            pending: 0,
            next: 0,
        }
    }

    #[inline(always)]
    fn push(&mut self, land: u64, r: Reg, v: u32) {
        debug_assert!(land >= self.next, "write lands in an already-drained slot");
        debug_assert!(
            land - self.next < WRITE_RING as u64,
            "writeback latency exceeds the scoreboard ring"
        );
        self.buckets[(land % WRITE_RING as u64) as usize].push((r, v));
        self.pending += 1;
    }
}

/// An executable machine instance: configuration + program + memory state.
#[derive(Debug)]
pub struct Machine {
    config: MachineConfig,
    program: Program,
    image: EncodedProgram,
    regs: RegFile,
    mem: MemorySystem,
    pc: usize,
    cycle: u64,
    /// The predecoded execution cache of `program` (see [`IssuePlan`]).
    plan: IssuePlan,
    /// Per-superblock metadata precomputed at construction (see
    /// [`SuperblockInfo`]).
    blocks: Vec<SuperblockInfo>,
    /// Fused/fallback instruction counters (see [`EngineTelemetry`]).
    telemetry: EngineTelemetry,
    /// In-flight register results, bucketed by landing instruction slot
    /// (see [`WriteRing`]).
    writes: WriteRing,
    /// Taken branch awaiting its delay slots: (remaining slots, target).
    pending_branch: Option<(u32, usize)>,
    /// The 4-entry instruction buffer of stage P (§3): base addresses of
    /// the 32-byte aligned chunks most recently fetched from the
    /// instruction cache. Tight loops run entirely out of this buffer.
    ibuf: [u32; 4],
    ibuf_next: usize,
    stats: RunStats,
    /// Livelock watchdog limit in cycles (see
    /// [`DEFAULT_WATCHDOG_CYCLES`]); configurable via
    /// [`set_watchdog`](Machine::set_watchdog).
    watchdog_cycles: u64,
    /// Cycle at which the last guard-true operation executed.
    last_progress_cycle: u64,
    /// Ring buffer of the last `config.trace_ring` trace records, always
    /// maintained (cheap) so crash reports can show recent history.
    trace_ring: VecDeque<TraceRecord>,
    /// Trace-event sink (disabled by default; see `tm3270-obs`). Shared
    /// with the memory system by [`Machine::attach_sink`].
    sink: SinkHandle,
    /// Whether the program came from the scheduler ([`Machine::new`]) and
    /// scheduler invariants (≤5 register writebacks per cycle) may be
    /// asserted, or from an arbitrary decoded image
    /// ([`Machine::from_image`]) where they may legitimately not hold.
    /// Checked by debug-build asserts (release builds skip the
    /// write-port accounting), and by [`run_with`](Machine::run_with) to
    /// keep fault-injected images off the fused dispatch path.
    trusted_schedule: bool,
    /// Diagnostic override: route every run through the cycle-accurate
    /// fallback loop even when the fused path would be eligible. Set by
    /// [`Machine::set_force_fallback`]; never serialized — it changes
    /// which engine executes, not what it computes.
    force_fallback: bool,
}

impl Machine {
    /// Creates a machine running `program` under `config`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Encode`] if the program cannot be encoded into
    /// its binary image (the image drives instruction-cache behaviour).
    pub fn new(config: MachineConfig, program: Program) -> Result<Machine, SimError> {
        let image = encode_program(&program)?;
        Ok(Machine::assemble(config, program, image, true))
    }

    /// Creates a machine by *decoding* a binary image — the load path of
    /// the fault-injection harness. Unlike [`Machine::new`], the program
    /// that runs is whatever the (possibly corrupted) image decodes to.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Decode`], [`SimError::InvalidOpcode`] or
    /// [`SimError::RegisterOutOfRange`] — with the failing instruction
    /// index — if the image cannot be decoded. Never panics, whatever
    /// the image contents.
    pub fn from_image(config: MachineConfig, image: EncodedProgram) -> Result<Machine, SimError> {
        let program = decode_program_detailed(&image)?;
        Ok(Machine::assemble(config, program, image, false))
    }

    fn assemble(
        config: MachineConfig,
        program: Program,
        image: EncodedProgram,
        trusted_schedule: bool,
    ) -> Machine {
        let mem = MemorySystem::new(config.mem.clone());
        let freq = config.freq_mhz();
        let ring_cap = config.trace_ring.min(4096);
        debug_assert!(
            (config.issue.max_latency() as usize) < WRITE_RING,
            "writeback ring too small for the issue model"
        );
        let plan = IssuePlan::lower(&program, &image, &config.issue);
        let blocks = lower_superblocks(&program, &plan);
        Machine {
            config,
            program,
            image,
            plan,
            blocks,
            telemetry: EngineTelemetry::default(),
            regs: RegFile::new(),
            mem,
            pc: 0,
            cycle: 0,
            writes: WriteRing::new(),
            pending_branch: None,
            ibuf: [u32::MAX; 4],
            ibuf_next: 0,
            stats: RunStats {
                cycles: 0,
                instrs: 0,
                ops: 0,
                exec_ops: 0,
                branches: 0,
                taken_branches: 0,
                ifetch_stall_cycles: 0,
                data_stall_cycles: 0,
                freq_mhz: freq,
                mem: FullStats {
                    mem: Default::default(),
                    dcache: Default::default(),
                    icache: Default::default(),
                    prefetch: Default::default(),
                    dram: Default::default(),
                },
            },
            watchdog_cycles: DEFAULT_WATCHDOG_CYCLES,
            last_progress_cycle: 0,
            trace_ring: VecDeque::with_capacity(ring_cap),
            sink: SinkHandle::disabled(),
            trusted_schedule,
            force_fallback: false,
        }
    }

    /// Forces every subsequent run through the cycle-accurate fallback
    /// loop ([`step_record`](Machine::step_record)) even when the fused
    /// superblock engine would be eligible. Both engines are
    /// bit-identical by contract; this exists so tests and CI can
    /// actually exercise that contract (and so regressions in either
    /// engine can be bisected against the other).
    pub fn set_force_fallback(&mut self, on: bool) {
        self.force_fallback = on;
    }

    /// Attaches a trace sink: pipeline events (instruction issue, op
    /// dispatch, stalls, branches, the watchdog) and memory-system
    /// events all flow to it. Pass [`SinkHandle::disabled`] to detach.
    pub fn attach_sink(&mut self, sink: SinkHandle) {
        self.mem.attach_sink(sink.clone());
        self.sink = sink;
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// The encoded binary image of the program.
    pub fn image(&self) -> &EncodedProgram {
        &self.image
    }

    /// Reads a register (architectural state; in-flight results are not
    /// visible).
    pub fn reg(&self, r: Reg) -> u32 {
        self.regs.read(r)
    }

    /// Writes a register before the run starts (kernel arguments).
    pub fn set_reg(&mut self, r: Reg, value: u32) {
        self.regs.write(r, value);
    }

    /// Copies `data` into the flat data memory at `addr`.
    pub fn load_data(&mut self, addr: u32, data: &[u8]) {
        self.mem.flat_mut().store_bytes(addr, data);
    }

    /// Reads `len` bytes of flat data memory at `addr`.
    ///
    /// Allocates a fresh buffer per call; verification loops that probe
    /// memory repeatedly should prefer [`Machine::read_data_into`].
    pub fn read_data(&self, addr: u32, len: usize) -> Vec<u8> {
        let mut buf = vec![0u8; len];
        self.read_data_into(addr, &mut buf);
        buf
    }

    /// Reads `buf.len()` bytes of flat data memory at `addr` into `buf`
    /// without allocating — the golden-checksum verification paths call
    /// this once per probe, so sweeps pay no per-probe heap traffic.
    /// Addresses wrap at the flat-memory boundary, like [`read_data`]
    /// (Machine::read_data).
    pub fn read_data_into(&self, addr: u32, buf: &mut [u8]) {
        self.mem.flat().read_into(addr, buf);
    }

    /// Configures a hardware prefetch region (the `PFn_*` registers,
    /// paper §2.3) before or during a run.
    pub fn set_prefetch_region(&mut self, region: u8, r: Region) {
        self.mem.set_prefetch_region(region, r);
    }

    /// Direct access to the memory system.
    pub fn mem(&self) -> &MemorySystem {
        &self.mem
    }

    /// The program this machine executes (decoded form).
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Per-superblock metadata precomputed at construction: block spans,
    /// register read/write sets, issue-slot/latency aggregates,
    /// fetch-chunk spans and the memory-op map (see [`SuperblockInfo`]).
    /// Sorted by block head; covers every instruction exactly once.
    pub fn superblock_info(&self) -> &[SuperblockInfo] {
        &self.blocks
    }

    /// How many instructions ran fused versus on the cycle-accurate
    /// fallback path (see [`EngineTelemetry`]). Counts accumulate across
    /// runs on this machine; they are advisory and never snapshotted.
    pub fn engine_telemetry(&self) -> EngineTelemetry {
        self.telemetry
    }

    /// Current program counter (VLIW instruction index).
    pub fn pc(&self) -> usize {
        self.pc
    }

    /// Current cycle count.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Sets the livelock watchdog: the run aborts with
    /// [`SimError::NoProgress`] after `cycles` cycles without a single
    /// executed non-jump operation. Defaults to
    /// [`DEFAULT_WATCHDOG_CYCLES`].
    pub fn set_watchdog(&mut self, cycles: u64) {
        self.watchdog_cycles = cycles.max(1);
    }

    /// The last up-to-`config.trace_ring` trace records (default
    /// [`TRACE_RING`]), oldest first. Maintained on every step
    /// regardless of tracing mode.
    pub fn recent_trace(&self) -> impl Iterator<Item = &TraceRecord> {
        self.trace_ring.iter()
    }

    /// An order-sensitive FNV-1a digest of the 128 architectural
    /// registers — a compact regfile fingerprint for crash reports and
    /// divergence checks.
    pub fn reg_digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for i in 0..128u8 {
            for b in self.regs.read(Reg::new(i)).to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        }
        h
    }

    fn commit_writes(&mut self, upto: u64) {
        if self.writes.pending > 0 {
            let mut cc = self.writes.next;
            while cc <= upto && self.writes.pending > 0 {
                let bucket = &mut self.writes.buckets[(cc % WRITE_RING as u64) as usize];
                // Up to five simultaneous register-file updates per cycle
                // (stage W, paper §3). The scheduler guarantees this for
                // `Machine::new` programs; assert it there (in debug
                // builds) as a scheduler-bug tripwire. Programs decoded
                // from arbitrary images (`Machine::from_image`, the
                // fault-injection path) can violate the write-port
                // budget — on silicon that is an undefined hardware
                // conflict; the functional model simply applies all
                // writes deterministically rather than panicking.
                debug_assert!(
                    !self.trusted_schedule || bucket.len() <= 5,
                    "more than five register-file writes in one cycle"
                );
                debug_assert!(
                    bucket.len() <= WRITE_BUCKET_CAP,
                    "write bucket outgrew its reserved capacity"
                );
                self.writes.pending -= bucket.len();
                // Reverse push order: on a same-register collision within
                // one landing slot the earliest-pushed write wins,
                // matching the pre-ring reverse-scan commit.
                for &(r, v) in bucket.iter().rev() {
                    self.regs.write(r, v);
                }
                bucket.clear();
                cc += 1;
            }
        }
        // Advance past `upto` even when nothing landed, so a later push
        // can never map two live landing slots to the same bucket.
        self.writes.next = self.writes.next.max(upto.saturating_add(1));
    }

    /// The run statistics accumulated so far, with the cycle counter
    /// and the memory-system snapshot filled in exactly as
    /// [`run_with`](Machine::run_with) fills them at halt — the mid-run
    /// `inspect` surface of the session API. Cheap enough to call
    /// between run slices; it never perturbs the machine.
    pub fn stats_snapshot(&self) -> RunStats {
        let mut stats = self.stats;
        stats.cycles = self.cycle;
        stats.mem = self.mem.stats();
        stats
    }

    /// Whether the program has halted (fell off the end).
    pub fn is_halted(&self) -> bool {
        self.pc >= self.program.instrs.len() && self.pending_branch.is_none()
    }

    /// Executes one VLIW instruction.
    ///
    /// # Errors
    ///
    /// See [`SimError`].
    pub fn step(&mut self) -> Result<(), SimError> {
        self.step_record().map(|_| ())
    }

    /// Outlined trace emission for one dispatched operation (the
    /// `OpDispatch` event, plus `BranchResolve` for jumps). Kept out of
    /// line — and out of the untraced hot loop — because the
    /// mnemonic/unit name tables are large; the disabled path pays only
    /// the `enabled()` branch at the call site.
    #[cold]
    #[inline(never)]
    fn emit_op_events(&self, cycle: u64, pc: usize, slot: usize, op: &Op, res: &ExecResult) {
        self.sink.emit(TraceEvent::OpDispatch {
            cycle,
            pc,
            slot: slot as u8,
            unit: op.opcode.unit().name(),
            mnemonic: op.opcode.mnemonic(),
            executed: res.executed,
        });
        if op.opcode.is_jump() {
            self.sink.emit(TraceEvent::BranchResolve {
                cycle,
                pc,
                target: res.branch_target.map(|t| t as usize),
                taken: res.executed && res.branch_target.is_some(),
            });
        }
    }

    /// Outlined `InstrIssue` emission (see [`Self::emit_op_events`]).
    #[cold]
    #[inline(never)]
    fn emit_instr_issue(&self, cycle: u64, pc: usize, ops: u8) {
        self.sink.emit(TraceEvent::InstrIssue { cycle, pc, ops });
    }

    /// Outlined stall emission: a balanced `StallBegin`/`StallEnd` pair
    /// spanning `[begin, begin + cycles)`, attributed to the VLIW
    /// instruction at `pc` (about to issue for ifetch stalls, just
    /// issued for data stalls).
    #[cold]
    #[inline(never)]
    fn emit_stall(&self, begin: u64, cause: StallCause, cycles: u64, pc: usize) {
        self.sink.emit(TraceEvent::StallBegin {
            cycle: begin,
            cause,
            pc,
        });
        self.sink.emit(TraceEvent::StallEnd {
            cycle: begin + cycles,
            cause,
            cycles,
            pc,
        });
    }

    /// The execute stage of one VLIW instruction: dispatches every
    /// operation of the predecoded plan, accumulating stats and pending
    /// register writes. Returns `(branch_target, executed_ops,
    /// progress_ops)`.
    ///
    /// Monomorphized over `TRACING`: the `false` instantiation — the
    /// ordinary untraced hot loop — contains no emission code at all, so
    /// attaching a sink costs untraced runs nothing. Plan entries are
    /// `Copy` and copied to a local per iteration, so nothing borrows
    /// `self` across the execute call and nothing is cloned or
    /// allocated.
    #[inline(always)]
    fn dispatch_ops<const TRACING: bool>(
        &mut self,
        pc: usize,
        issue_cycle: u64,
    ) -> Result<(Option<usize>, u8, u8), SimError> {
        let PlannedInstr { start, end, .. } = self.plan.instrs[pc];
        let mut branch_target: Option<usize> = None;
        let mut exec_here = 0u8;
        let mut progress_here = 0u8;
        self.stats.ops += u64::from(end - start);
        let land_base = self.stats.instrs;
        for idx in start as usize..end as usize {
            let po = self.plan.ops[idx];
            let res = execute(&po.op, &self.regs, &mut self.mem).map_err(|e| match e {
                ExecError::MisalignedAccess { addr, size } => {
                    SimError::MisalignedAccess { pc, addr, size }
                }
                ExecError::OutOfBoundsAccess { addr, size } => {
                    SimError::OutOfBoundsAccess { pc, addr, size }
                }
            })?;
            if TRACING {
                self.emit_op_events(issue_cycle, pc, po.slot as usize, &po.op, &res);
            }
            if res.executed {
                self.stats.exec_ops += 1;
                exec_here += 1;
                // Progress, for the livelock watchdog, means an executed
                // operation that can touch architectural state. Pure
                // jumps do not count: a loop executing only jumps (and
                // empty or guard-false instructions) computes nothing and
                // never will.
                if !po.is_jump {
                    progress_here += 1;
                }
            }
            if po.is_jump {
                self.stats.branches += 1;
            }
            for (r, v) in res.write_iter() {
                self.writes.push(land_base + u64::from(po.latency), r, v);
            }
            if let Some(t) = res.branch_target {
                self.stats.taken_branches += 1;
                branch_target = Some(t as usize);
            }
        }
        Ok((branch_target, exec_here, progress_here))
    }

    /// Executes one VLIW instruction and reports what happened.
    ///
    /// # Errors
    ///
    /// See [`SimError`].
    pub fn step_record(&mut self) -> Result<TraceRecord, SimError> {
        debug_assert!(!self.is_halted());
        let pc = self.pc;
        let tracing = self.sink.enabled();
        if tracing {
            // Tag memory-side events (cache accesses) with the
            // requesting instruction; untraced runs skip the store.
            self.mem.set_pc(pc);
        }

        // Front end (stages I1-I3 + P): every cycle a 32-byte aligned
        // chunk of instruction information can be retrieved from the
        // instruction cache into the 4-entry instruction buffer (§3);
        // instructions whose chunks are buffered cost no cache access.
        // The chunk window comes precomputed from the issue plan.
        let PlannedInstr {
            first_chunk,
            last_chunk,
            ..
        } = self.plan.instrs[pc];
        let mut istall = 0u64;
        let mut chunk = first_chunk;
        loop {
            if !self.ibuf.contains(&chunk) {
                istall += self.mem.fetch_instr(self.cycle + istall, chunk, 32);
                self.ibuf[self.ibuf_next] = chunk;
                self.ibuf_next = (self.ibuf_next + 1) % self.ibuf.len();
            }
            if chunk == last_chunk {
                break;
            }
            chunk = chunk.wrapping_add(32);
        }
        if istall > 0 && tracing {
            self.emit_stall(self.cycle, StallCause::IFetch, istall, pc);
        }
        self.cycle += istall;
        self.stats.ifetch_stall_cycles += istall;

        // Results landing by this instruction slot become visible to
        // reads.
        self.commit_writes(self.stats.instrs);

        // Execute stages: all operations of the instruction read the same
        // architectural state (operand read in stage D).
        let issue_cycle = self.cycle;
        self.mem.begin_instr(issue_cycle);
        // Monomorphized over the tracing flag so the untraced loop
        // contains no emission code at all (not even the branches).
        let (branch_target, exec_here, progress_here) = if tracing {
            self.dispatch_ops::<true>(pc, issue_cycle)?
        } else {
            self.dispatch_ops::<false>(pc, issue_cycle)?
        };
        if tracing {
            self.emit_instr_issue(issue_cycle, pc, exec_here);
        }
        let dstall = self.mem.take_stall();
        self.stats.data_stall_cycles += dstall;
        if dstall > 0 && tracing {
            self.emit_stall(self.cycle + 1, StallCause::Data, dstall, pc);
        }
        self.cycle += 1 + dstall;
        self.stats.instrs += 1;
        self.telemetry.fallback_instrs += 1;

        // Livelock watchdog: a well-formed program keeps executing
        // operations; a corrupted one can spin through jumps and
        // empty instructions forever without touching state.
        if progress_here > 0 {
            self.last_progress_cycle = self.cycle;
        } else {
            let idle = self.cycle - self.last_progress_cycle;
            if idle >= self.watchdog_cycles {
                self.sink.emit_with(|| TraceEvent::WatchdogFired {
                    cycle: self.cycle,
                    pc,
                    idle,
                });
                return Err(SimError::NoProgress { pc, cycles: idle });
            }
        }

        // Control flow: taken branches take effect after the delay slots.
        if let Some(target) = branch_target {
            if self.pending_branch.is_some() {
                return Err(SimError::BranchInDelaySlot { at: pc });
            }
            self.pending_branch = Some((self.config.issue.jump_delay_slots, target));
            self.pc += 1;
        } else {
            match &mut self.pending_branch {
                Some((remaining, target)) => {
                    *remaining -= 1;
                    if *remaining == 0 {
                        self.pc = *target;
                        self.pending_branch = None;
                    } else {
                        self.pc += 1;
                    }
                }
                None => self.pc += 1,
            }
        }
        let record = TraceRecord {
            cycle: issue_cycle,
            pc,
            ops_executed: exec_here,
            ifetch_stall: istall,
            data_stall: dstall,
            branch_taken: branch_target,
        };
        let ring = self.config.trace_ring;
        if ring > 0 {
            if self.trace_ring.len() >= ring {
                self.trace_ring.pop_front();
            }
            self.trace_ring.push_back(record);
        }
        Ok(record)
    }

    /// The fused steady-state executor: runs instructions back-to-back
    /// with superblock-grade bookkeeping until the program halts, the
    /// cycle budget is reached, or a typed error fires. Architecturally
    /// and *cycle*-identical to a `step_record` loop — only overhead is
    /// removed, never timing:
    ///
    /// - Register-pure ops dispatch through their precomputed
    ///   [`PureFn`] pointer (guard check + evaluate + scoreboard push),
    ///   skipping the full opcode match and [`ExecResult`] plumbing.
    ///   Memory ops, jumps, two-destination super-ops and everything
    ///   else take the generic [`execute`] path unchanged.
    /// - The front end probes only instruction-fetch chunks *newer* than
    ///   the previous instruction's window. During sequential flow the
    ///   4-entry buffer provably still holds every older chunk of the
    ///   current window (spans are ≤ 2 chunks and addresses
    ///   non-decreasing, so at most 2 distinct other chunks enter
    ///   between consecutive references — never enough to evict), so
    ///   the skipped probes are guaranteed hits with zero state effect.
    ///   After a taken branch lands (and on entry) the full window is
    ///   probed, exactly like the fallback path.
    /// - Run statistics accumulate in locals and flush to `self` on
    ///   every exit path, so budget boundaries, halts and errors observe
    ///   exact counters.
    ///
    /// Everything with externally visible per-instruction behaviour is
    /// preserved verbatim: `begin_instr`/`take_stall` bracket every
    /// instruction (prefetch absorption and data-stall timing are
    /// `mem`-state dependent), the writeback ring commits per
    /// instruction slot, the watchdog and delay-slot bookkeeping run per
    /// instruction, and the crash-report trace ring is maintained
    /// identically. Callers gate this on: no trace sink, no observer,
    /// and a trusted (scheduler-produced) image — every other
    /// combination takes [`step_record`](Machine::step_record).
    fn run_fused(&mut self, budget: u64) -> Result<(), SimError> {
        let len = self.plan.instrs.len();
        let delay_slots = self.config.issue.jump_delay_slots;
        let ring = self.config.trace_ring;

        let mut pc = self.pc;
        let mut cycle = self.cycle;
        let mut pending = self.pending_branch;
        let mut last_progress = self.last_progress_cycle;
        let mut instrs = self.stats.instrs;
        let mut ops = self.stats.ops;
        let mut exec_ops = self.stats.exec_ops;
        let mut branches = self.stats.branches;
        let mut taken = self.stats.taken_branches;
        let mut istall_total = self.stats.ifetch_stall_cycles;
        let mut dstall_total = self.stats.data_stall_cycles;
        let mut fused = 0u64;

        /// Sentinel chunk floor: probe the next instruction's full
        /// window (not 32-byte aligned, so no real chunk collides).
        const FULL_PROBE: u32 = u32::MAX;
        let mut probe_floor = FULL_PROBE;

        // Line-resident window set (`MemorySystem::try_open_window`):
        // up to `NWIN` cache lines whose same-line loads and stores
        // bypass the full memory-model call — data moves raw against
        // flat memory, and the hit's architectural effects (recency
        // tick, hit statistics, line LRU/dirty, write-buffer drain)
        // are applied *immediately* through the indexed shortcuts
        // `window_hit_load`/`window_hit_store`. Nothing is deferred:
        // the model is bit-identical to the full path after every
        // single access, and a window hit is strictly cheaper than the
        // access it replaces (no probe, no byte-coverage check, no
        // segmentation, no prefetch observation). Media kernels
        // interleave a couple of load streams with a store stream;
        // tracking one line per stream is what lets windows survive
        // the interleave instead of thrashing open/closed on every
        // alternation.
        //
        // `WIN_NONE` doubles as the "empty slot" sentinel *and* a value
        // the containment compare below can never match: line bases are
        // multiples of the (≥64-byte) line size, and `addr & !win_mask`
        // only produces such multiples.
        const WIN_NONE: u32 = 1;
        const NWIN: usize = 4;
        let win_line = self.mem.config().dcache.line;
        let win_mask = win_line - 1;
        let mut wbase = [WIN_NONE; NWIN];
        // Cache-array slot of each window line, captured at open and
        // refreshed on every epoch-change re-validation: window hits
        // address the line directly instead of probing for it.
        let mut widx = [0u32; NWIN];
        let mut nwin = 0usize;
        let mut wnext = 0usize;
        // Data-cache shape epoch at the last window maintenance: while
        // it stands still (and the prefetch unit stays quiescent), no
        // full-model activity can have disturbed a window line, so
        // re-validation is one counter compare instead of per-slot
        // checks.
        let mut win_epoch = self.mem.dcache_epoch();
        // Single-entry negative cache: the last line that refused a
        // window open (typically a write-allocated, partially valid
        // line). Skips the open probe the streaming-store pattern would
        // otherwise repeat for every store; cleared whenever the shape
        // epoch moves, since only a structural mutation (e.g. a refill
        // merge) can make a refused line eligible.
        let mut no_open: u32 = WIN_NONE;
        // Adaptive churn gate. Windows only pay when a line takes many
        // hits between structural disturbances; a working set that
        // thrashes the cache (mpeg2-style motion compensation) revokes
        // windows almost as fast as it opens them, and the open/
        // re-validate traffic becomes pure overhead. Once enough
        // revocations have accumulated to judge the run, a poor
        // hit-per-revocation ratio switches opening off for the rest of
        // the engine run — architectural effects are unchanged (every
        // access simply takes the full path), only throughput policy.
        let mut wins_enabled = true;
        // Open-attempt latch, written by full-path single-line accesses
        // and consumed (then reset) by end-of-instruction maintenance —
        // hoisted out of the per-instruction scope so instructions that
        // never latch don't pay the re-initialisation. Two entries
        // because media loops commonly issue two streams' loads in one
        // VLIW instruction (e.g. bi-directional prediction fetches) — a
        // single latch would let one stream's window starve the
        // other's.
        let mut reopen: [u32; 2] = [WIN_NONE; 2];
        let mut mem_calls = 0u64;
        let mut window_hits = 0u64;
        let mut window_revs = 0u64;

        // Drops every window slot (counted as revocations). Nothing to
        // sync — window effects are applied as they happen — so this is
        // pure bookkeeping for seams whose continuation cannot trust
        // the captured line indices (snapshot restore, engine exit).
        macro_rules! close_windows {
            () => {
                if nwin > 0 {
                    for k in 0..NWIN {
                        if wbase[k] != WIN_NONE {
                            wbase[k] = WIN_NONE;
                            window_revs += 1;
                        }
                    }
                    nwin = 0;
                    let _ = nwin;
                }
            };
        }

        // Crash-report ring, kept in a local circular buffer and folded
        // back into `self.trace_ring` on exit: per-instruction VecDeque
        // maintenance (length check + pop + push) is measurably more
        // expensive than an indexed store, and only the final ring
        // contents are observable.
        let mut local_ring: Vec<TraceRecord> = Vec::with_capacity(ring);
        let mut ring_head = 0usize;

        // Latency-1 writeback lane: results that land at the very next
        // instruction slot stay in this fixed array instead of taking a
        // scoreboard-ring round trip (push + bucket drain). All entries
        // share one landing slot (`lane_land`); the lane is applied in
        // reverse push order ahead of the ring drain of the same slot,
        // reproducing the bucket's collision rule (earliest-pushed
        // wins — ring entries for the slot were pushed in earlier
        // instructions, i.e. before every lane entry). On every exit
        // the lane spills into the ring, so seam state — snapshots,
        // budget boundaries, post-mortems — is bit-identical to the
        // ring-only scheme. Capacity 10 = 5 slots x 2 destinations.
        let mut lane = [(Reg::ZERO, 0u32); 10];
        let mut lane_n = 0usize;
        let mut lane_land = 0u64;

        macro_rules! flush {
            () => {
                close_windows!();
                for k in 0..lane_n {
                    self.writes.push(lane_land, lane[k].0, lane[k].1);
                }
                lane_n = 0;
                let _ = lane_n;
                self.pc = pc;
                self.cycle = cycle;
                self.pending_branch = pending;
                self.last_progress_cycle = last_progress;
                self.stats.instrs = instrs;
                self.stats.ops = ops;
                self.stats.exec_ops = exec_ops;
                self.stats.branches = branches;
                self.stats.taken_branches = taken;
                self.stats.ifetch_stall_cycles = istall_total;
                self.stats.data_stall_cycles = dstall_total;
                self.telemetry.fused_instrs += fused;
                self.telemetry.mem_calls += mem_calls;
                self.telemetry.window_hits += window_hits;
                self.telemetry.window_revocations += window_revs;
                if local_ring.len() == ring && ring > 0 {
                    // A full rotation: the local buffer alone holds the
                    // last `ring` records, oldest at `ring_head`.
                    self.trace_ring.clear();
                    for k in 0..ring {
                        self.trace_ring
                            .push_back(local_ring[(ring_head + k) % ring]);
                    }
                } else {
                    // Fewer new records than the ring holds: append them
                    // after whatever history was already there.
                    for rec in &local_ring {
                        if self.trace_ring.len() >= ring {
                            self.trace_ring.pop_front();
                        }
                        self.trace_ring.push_back(*rec);
                    }
                }
            };
        }

        loop {
            if (pc >= len && pending.is_none()) || cycle >= budget {
                flush!();
                return Ok(());
            }
            let ipc = pc;
            let PlannedInstr {
                start,
                end,
                first_chunk,
                last_chunk,
                has_mem,
            } = self.plan.instrs[ipc];

            // Front end: probe only chunks newer than the previous
            // window (see method docs for why older ones are hits).
            let mut istall = 0u64;
            let mut chunk = if probe_floor == FULL_PROBE || first_chunk > probe_floor {
                first_chunk
            } else {
                probe_floor.wrapping_add(32)
            };
            while chunk <= last_chunk {
                if !self.ibuf.contains(&chunk) {
                    istall += self.mem.fetch_instr(cycle + istall, chunk, 32);
                    self.ibuf[self.ibuf_next] = chunk;
                    self.ibuf_next = (self.ibuf_next + 1) % self.ibuf.len();
                }
                chunk = chunk.wrapping_add(32);
            }
            probe_floor = last_chunk;
            cycle += istall;
            istall_total += istall;

            // Previous instruction's latency-1 results: reverse order
            // first, then the ring drain of the same slot (see the lane
            // comment above for why this matches the bucket rule).
            while lane_n > 0 {
                lane_n -= 1;
                let (r, v) = lane[lane_n];
                self.regs.write(r, v);
            }
            self.commit_writes(instrs);

            let issue_cycle = cycle;
            // Instructions without memory ops cannot stall on data and
            // never advance the memory clock observably — unless a
            // prefetch is in flight, whose completion must be absorbed
            // at exactly this cycle (fills and copy-back timing depend
            // on it). The clock itself still tracks every instruction
            // (`set_now`) so a snapshot taken after a pure-ALU tail is
            // byte-identical to one from the fallback engine.
            //
            // With windows open the memory-op case also degenerates to
            // `set_now`: window quiescence guarantees no prefetch is in
            // flight and `stall` is zero at instruction boundaries, so
            // `begin_instr` would be byte-identical anyway. Should an
            // access then escape the set, the `start_mem!` upgrade
            // below starts full timing before the escaping access
            // touches the model.
            let win_open = nwin > 0;
            let mem_active = (has_mem && !win_open) || self.mem.prefetch_in_flight();
            if mem_active {
                self.mem.begin_instr(issue_cycle);
            } else {
                self.mem.set_now(issue_cycle);
            }
            let mut mem_started = mem_active;
            // Set once full-model activity ran while windows were open:
            // it may have evicted or invalidated a window line or armed
            // the prefetch unit, so window service demands an explicit
            // proof (`win_ok!`) for the rest of the instruction and
            // every slot is re-validated at the instruction's end.
            let mut wins_suspect = false;
            // Memoised post-upgrade proof (see `win_ok!`):
            // 0 = not yet evaluated since the last full-model access,
            // 1 = set proven undisturbed, 2 = disturbed. Re-armed to 0
            // by every `start_mem!` so each full access forces a fresh
            // proof before further accesses bypass the model.
            let mut suspect_ok: u8 = 0;
            // Window-side data stalls of this instruction (write-buffer
            // back-pressure charged by `window_hit_store` before full
            // timing started): integral by construction, so splitting
            // them out of `take_stall`'s ceiling keeps the total exact.
            // Exactly one of `wstall` and the model's own accumulator
            // is live — the `start_mem!` upgrade transfers and zeroes
            // `wstall`, and post-upgrade back-pressure goes straight to
            // `add_stall`.
            let mut wstall = 0.0f64;

            // Full-model access prelude: upgrades the instruction to
            // full memory-system timing on its first full access,
            // bracketing it exactly as the non-window path would have
            // (`begin_instr` at the issue cycle) and transferring any
            // already charged window-side stalls into the model's
            // accumulator so the trailing `take_stall` sees the
            // complete figure. Window state needs no synchronisation —
            // window hits commit their effects immediately — but the
            // memoised `win_ok!` proof is re-armed: the access about to
            // run may disturb the set.
            macro_rules! start_mem {
                () => {
                    suspect_ok = 0;
                    if !mem_started {
                        wins_suspect = true;
                        self.mem.begin_instr(issue_cycle);
                        if wstall > 0.0 {
                            self.mem.add_stall(wstall);
                            wstall = 0.0;
                            let _ = wstall;
                        }
                        mem_started = true;
                    }
                };
            }

            // Window scan: the slot index holding the line of a
            // single-line access, or `NWIN` for a miss. `addr & !mask`
            // is a line-size multiple, so the slot compare can never
            // match the `WIN_NONE` sentinel — empty slots fail the
            // scan without a separate occupancy check. `$eligible` is
            // evaluated after the cheap containment test.
            macro_rules! scan_win {
                ($addr:expr, $alen:expr, $eligible:expr) => {{
                    let mut h = NWIN;
                    if win_open && ($addr & win_mask) + $alen <= win_line && $eligible {
                        let wline = $addr & !win_mask;
                        for k in 0..NWIN {
                            if wbase[k] == wline {
                                h = k;
                                break;
                            }
                        }
                    }
                    h
                }};
            }

            // Full-path follow-up: a single-line access is the window
            // candidate shape — latch its line for an open attempt at
            // the end of the instruction, once its timing has settled.
            macro_rules! latch_open {
                ($addr:expr, $alen:expr) => {
                    if wins_enabled && ($addr ^ $addr.wrapping_add($alen - 1)) & !win_mask == 0 {
                        let l = $addr & !win_mask;
                        // The negative cache is consulted at latch time
                        // (not just at open time) so a streaming store
                        // run over a refused line — the allocate-on-
                        // write pattern writes a line far faster than
                        // it completes it — doesn't re-enter
                        // maintenance on every single store.
                        if l != no_open {
                            if reopen[0] == WIN_NONE {
                                reopen[0] = l;
                            } else if reopen[0] != l {
                                reopen[1] = l;
                            }
                        }
                    }
                };
            }

            // Post-upgrade eligibility. After a full-model access ran
            // this instruction (`wins_suspect`), accesses may still be
            // window serviced if an inline check proves the set
            // undisturbed: shape epoch unmoved and prefetch still
            // quiescent. VLIW media loops routinely bundle a streaming
            // (full-path) access with a window-resident one in a single
            // instruction — without the inline check the full access
            // would drag its bundle-mates off the fast path. The proof
            // is memoised in `suspect_ok`: the set cannot be disturbed
            // between full accesses, so one evaluation covers the
            // whole run until `start_mem!` fires again.
            macro_rules! win_ok {
                () => {
                    !wins_suspect || {
                        if suspect_ok == 0 {
                            suspect_ok = if self.mem.dcache_epoch() == win_epoch
                                && self.mem.prefetch_quiescent()
                            {
                                1
                            } else {
                                2
                            };
                        }
                        suspect_ok == 1
                    }
                };
            }

            ops += u64::from(end - start);
            let land_base = instrs;
            lane_land = land_base + 1;
            let mut branch_target: Option<usize> = None;
            let mut exec_here = 0u8;
            let mut progress = false;
            for po in &self.plan.ops[start as usize..end as usize] {
                if let Some(pf) = po.pure {
                    if self.regs.guard(po.op.guard) {
                        exec_ops += 1;
                        exec_here += 1;
                        progress = true;
                        let v = pf(
                            self.regs.read(po.op.srcs[0]),
                            self.regs.read(po.op.srcs[1]),
                            po.op.imm,
                        );
                        if po.latency == 1 {
                            lane[lane_n] = (po.op.dsts[0], v);
                            lane_n += 1;
                        } else {
                            self.writes
                                .push(land_base + u64::from(po.latency), po.op.dsts[0], v);
                        }
                    }
                } else if let Some(fm) = po.fast_mem {
                    // Directly dispatched load/store: same semantics as
                    // the matching `execute` arm, minus the giant opcode
                    // match and the `ExecResult` round trip. Accesses
                    // confined to the open line-resident window are
                    // serviced raw; everything else takes the full
                    // memory model (upgrading the instruction via
                    // `start_mem!` first).
                    if self.regs.guard(po.op.guard) {
                        exec_ops += 1;
                        exec_here += 1;
                        progress = true;
                        let err = match fm {
                            FastMem::Load {
                                bytes,
                                sext,
                                indexed,
                            } => {
                                let off = if indexed {
                                    self.regs.read(po.op.srcs[1])
                                } else {
                                    po.op.imm as u32
                                };
                                let addr = self.regs.read(po.op.srcs[0]).wrapping_add(off);
                                match self.mem.check_access(addr, u32::from(bytes)) {
                                    Ok(()) => {
                                        let h = scan_win!(addr, u32::from(bytes), win_ok!());
                                        let v = if h < NWIN {
                                            window_hits += 1;
                                            self.mem.window_hit_load(widx[h]);
                                            self.mem.window_load_le(addr, bytes as usize)
                                        } else {
                                            start_mem!();
                                            mem_calls += 1;
                                            latch_open!(addr, u32::from(bytes));
                                            self.mem.load_le(addr, bytes as usize)
                                        };
                                        let v = if sext {
                                            sign_extend(v, u32::from(bytes) * 8)
                                        } else {
                                            v
                                        };
                                        if po.latency == 1 {
                                            lane[lane_n] = (po.op.dsts[0], v);
                                            lane_n += 1;
                                        } else {
                                            self.writes.push(
                                                land_base + u64::from(po.latency),
                                                po.op.dsts[0],
                                                v,
                                            );
                                        }
                                        None
                                    }
                                    Err(e) => Some(e),
                                }
                            }
                            FastMem::Store { bytes } => {
                                let addr =
                                    self.regs.read(po.op.srcs[0]).wrapping_add(po.op.imm as u32);
                                match self.mem.check_access(addr, u32::from(bytes)) {
                                    Ok(()) => {
                                        let v = self.regs.read(po.op.srcs[1]);
                                        let h = scan_win!(addr, u32::from(bytes), win_ok!());
                                        if h < NWIN {
                                            window_hits += 1;
                                            self.mem.window_store_le(addr, bytes as usize, v);
                                            // Write-buffer back-pressure
                                            // lands wherever the stall
                                            // accumulator currently
                                            // lives (see `wstall`).
                                            if self.mem.window_hit_store(widx[h], wstall) {
                                                if mem_started {
                                                    self.mem.add_stall(1.0);
                                                } else {
                                                    wstall += 1.0;
                                                }
                                            }
                                        } else {
                                            start_mem!();
                                            mem_calls += 1;
                                            latch_open!(addr, u32::from(bytes));
                                            self.mem.store_le(addr, bytes as usize, v);
                                        }
                                        None
                                    }
                                    Err(e) => Some(e),
                                }
                            }
                            FastMem::SuperLoad => {
                                let addr = self
                                    .regs
                                    .read(po.op.srcs[0])
                                    .wrapping_add(self.regs.read(po.op.srcs[1]));
                                match self.mem.check_access(addr, 8) {
                                    Ok(()) => {
                                        let mut buf = [0u8; 8];
                                        let h = scan_win!(addr, 8, win_ok!());
                                        if h < NWIN {
                                            window_hits += 1;
                                            self.mem.window_hit_load(widx[h]);
                                            self.mem.window_load_bytes(addr, &mut buf);
                                        } else {
                                            start_mem!();
                                            mem_calls += 1;
                                            latch_open!(addr, 8u32);
                                            self.mem.load_bytes(addr, &mut buf);
                                        }
                                        let (w1, w2) = super_ld32_words(buf);
                                        if po.latency == 1 {
                                            lane[lane_n] = (po.op.dsts[0], w1);
                                            lane[lane_n + 1] = (po.op.dsts[1], w2);
                                            lane_n += 2;
                                        } else {
                                            let land = land_base + u64::from(po.latency);
                                            self.writes.push(land, po.op.dsts[0], w1);
                                            self.writes.push(land, po.op.dsts[1], w2);
                                        }
                                        None
                                    }
                                    Err(e) => Some(e),
                                }
                            }
                            FastMem::FracLoad => {
                                let addr = self.regs.read(po.op.srcs[0]);
                                match self.mem.check_access(addr, 5) {
                                    Ok(()) => {
                                        let mut data = [0u8; 5];
                                        let h = scan_win!(addr, 5, win_ok!());
                                        if h < NWIN {
                                            window_hits += 1;
                                            self.mem.window_hit_load(widx[h]);
                                            self.mem.window_load_bytes(addr, &mut data);
                                        } else {
                                            start_mem!();
                                            mem_calls += 1;
                                            latch_open!(addr, 5u32);
                                            self.mem.load_bytes(addr, &mut data);
                                        }
                                        let v = ld_frac8_value(data, self.regs.read(po.op.srcs[1]));
                                        if po.latency == 1 {
                                            lane[lane_n] = (po.op.dsts[0], v);
                                            lane_n += 1;
                                        } else {
                                            self.writes.push(
                                                land_base + u64::from(po.latency),
                                                po.op.dsts[0],
                                                v,
                                            );
                                        }
                                        None
                                    }
                                    Err(e) => Some(e),
                                }
                            }
                        };
                        if let Some(e) = err {
                            // A fault while windows are open must leave
                            // the machine exactly as the full path
                            // would: stalls already charged this
                            // instruction land in the model's
                            // accumulator before the seam flush.
                            if !mem_started && wstall > 0.0 {
                                self.mem.add_stall(wstall);
                            }
                            flush!();
                            return Err(match e {
                                ExecError::MisalignedAccess { addr, size } => {
                                    SimError::MisalignedAccess {
                                        pc: ipc,
                                        addr,
                                        size,
                                    }
                                }
                                ExecError::OutOfBoundsAccess { addr, size } => {
                                    SimError::OutOfBoundsAccess {
                                        pc: ipc,
                                        addr,
                                        size,
                                    }
                                }
                            });
                        }
                    }
                } else {
                    // Guard-true memory-unit ops (cache control,
                    // prefetch MMIO, super-stores) mutate state the
                    // window defers — commit it and start full timing
                    // before `execute` touches the model. Guard-false
                    // ops have no memory effect on either engine.
                    if po.mem && self.regs.guard(po.op.guard) {
                        start_mem!();
                        mem_calls += 1;
                    }
                    let res = match execute(&po.op, &self.regs, &mut self.mem) {
                        Ok(res) => res,
                        Err(e) => {
                            flush!();
                            return Err(match e {
                                ExecError::MisalignedAccess { addr, size } => {
                                    SimError::MisalignedAccess {
                                        pc: ipc,
                                        addr,
                                        size,
                                    }
                                }
                                ExecError::OutOfBoundsAccess { addr, size } => {
                                    SimError::OutOfBoundsAccess {
                                        pc: ipc,
                                        addr,
                                        size,
                                    }
                                }
                            });
                        }
                    };
                    if res.executed {
                        exec_ops += 1;
                        exec_here += 1;
                        if !po.is_jump {
                            progress = true;
                        }
                    }
                    if po.is_jump {
                        branches += 1;
                    }
                    for (r, v) in res.write_iter() {
                        if po.latency == 1 {
                            lane[lane_n] = (r, v);
                            lane_n += 1;
                        } else {
                            self.writes.push(land_base + u64::from(po.latency), r, v);
                        }
                    }
                    if let Some(t) = res.branch_target {
                        taken += 1;
                        branch_target = Some(t as usize);
                    }
                }
            }

            let dstall = if mem_started {
                self.mem.take_stall()
            } else if wstall > 0.0 {
                // Window-only instruction: every stall was integral CWB
                // back-pressure counted locally, so the cast is exact.
                wstall as u64
            } else {
                0
            };
            dstall_total += dstall;
            cycle += 1 + dstall;
            instrs += 1;
            fused += 1;

            // Window-set maintenance, only on instructions that ran
            // full-model activity and after their timing has fully
            // settled (so the probes see the state the next instruction
            // will). Maintenance is epoch-gated: if the data cache's
            // shape epoch and prefetch quiescence are unchanged, no
            // window line can have been disturbed and the per-slot
            // probes are skipped entirely. The outer gate keeps the
            // whole block off the path of full-model instructions with
            // nothing to do — no windows open and no open attempts
            // latched (the post-gate steady state).
            if mem_started && (nwin > 0 || reopen[0] != WIN_NONE) {
                let epoch = self.mem.dcache_epoch();
                if wins_suspect && nwin > 0 {
                    if !self.mem.prefetch_quiescent() {
                        // A prefetch MMIO op armed the unit: quiescence
                        // is gone, drop the whole set. Window hits on
                        // this instruction already refused on the
                        // inline quiescence check, so nothing else to
                        // unwind.
                        for b in wbase.iter_mut() {
                            if *b != WIN_NONE {
                                *b = WIN_NONE;
                                window_revs += 1;
                            }
                        }
                        nwin = 0;
                    } else if epoch != win_epoch {
                        // Structural mutation: re-validate every slot
                        // in place. Lines never migrate between array
                        // slots without another shape bump, so if the
                        // captured index still holds the tag (valid,
                        // not prefetched, fully resident) it is the
                        // same line and the index stays good.
                        for k in 0..NWIN {
                            if wbase[k] != WIN_NONE
                                && !self.mem.window_revalidate(widx[k], wbase[k])
                            {
                                wbase[k] = WIN_NONE;
                                nwin -= 1;
                                window_revs += 1;
                            }
                        }
                    }
                }
                if epoch != win_epoch {
                    no_open = WIN_NONE;
                    win_epoch = epoch;
                }
                // Open attempts, latched from single-line full-path
                // accesses above. A latched line can already be tracked
                // (its slot scan was suspended when the access ran) —
                // never open it twice.
                for r in reopen {
                    if r != WIN_NONE && r != no_open && !wbase.contains(&r) {
                        if let Some(w) = self.mem.try_open_window(r) {
                            debug_assert!(w.base == r && w.len == win_line);
                            debug_assert_eq!(w.hit_stall_cycles, 0, "hit latency folds into +1");
                            let slot = wbase.iter().position(|&b| b == WIN_NONE).unwrap_or(wnext);
                            if wbase[slot] == WIN_NONE {
                                nwin += 1;
                            } else {
                                // Round-robin replacement of a live
                                // window. Hits applied their effects
                                // immediately, so the victim slot
                                // carries no state to unwind.
                                window_revs += 1;
                                wnext = (slot + 1) % NWIN;
                            }
                            wbase[slot] = r;
                            widx[slot] = w.line_index;
                        } else {
                            no_open = r;
                        }
                    }
                }
                reopen = [WIN_NONE; 2];
                // Churn gate: enough revocations to judge the run, and
                // fewer than `HITS_PER_REV` hits bought per revocation
                // — the open/re-validate traffic is costing more than
                // the serviced hits save. Stop opening windows; the
                // remaining accesses take the full path (identical
                // effects, no window overhead).
                const REV_JUDGE: u64 = 1024;
                const HITS_PER_REV: u64 = 8;
                // Engagement gate: enough full-path traffic to judge,
                // and fewer than `HITS_PER_CALL` window hits bought per
                // full-model call — the working set is not line-reuse
                // shaped, so the scan/latch/maintenance tax on the
                // dominant full path outweighs the serviced hits.
                const CALL_JUDGE: u64 = 8192;
                const HITS_PER_CALL: u64 = 2;
                if wins_enabled
                    && ((window_revs >= REV_JUDGE && window_hits < HITS_PER_REV * window_revs)
                        || (mem_calls >= CALL_JUDGE && window_hits < HITS_PER_CALL * mem_calls))
                {
                    wins_enabled = false;
                    close_windows!();
                }
            }

            if progress {
                last_progress = cycle;
            } else {
                let idle = cycle - last_progress;
                if idle >= self.watchdog_cycles {
                    flush!();
                    return Err(SimError::NoProgress {
                        pc: ipc,
                        cycles: idle,
                    });
                }
            }

            if let Some(target) = branch_target {
                if pending.is_some() {
                    flush!();
                    return Err(SimError::BranchInDelaySlot { at: ipc });
                }
                pending = Some((delay_slots, target));
                pc += 1;
            } else {
                match &mut pending {
                    Some((remaining, target)) => {
                        *remaining -= 1;
                        if *remaining == 0 {
                            pc = *target;
                            pending = None;
                            probe_floor = FULL_PROBE;
                        } else {
                            pc += 1;
                        }
                    }
                    None => pc += 1,
                }
            }

            if ring > 0 {
                let rec = TraceRecord {
                    cycle: issue_cycle,
                    pc: ipc,
                    ops_executed: exec_here,
                    ifetch_stall: istall,
                    data_stall: dstall,
                    branch_taken: branch_target,
                };
                if local_ring.len() < ring {
                    local_ring.push(rec);
                } else {
                    local_ring[ring_head] = rec;
                    ring_head += 1;
                    if ring_head == ring {
                        ring_head = 0;
                    }
                }
            }
        }
    }

    /// The unified run entry point: runs until the program halts or the
    /// budget is exhausted, honouring every option in `opts` — the
    /// watchdog override, the per-instruction observer and crash-report
    /// capture. [`Machine::run`], [`Machine::run_reported`] and
    /// [`Machine::run_traced`] are thin wrappers over this.
    ///
    /// Steady-state execution takes the fused superblock path
    /// ([`run_fused`](Machine::run_fused)) whenever nothing needs
    /// per-instruction visibility; attaching a trace sink or an
    /// observer, or running a machine decoded from an arbitrary image
    /// ([`Machine::from_image`], the fault-injection load path), falls
    /// back to the cycle-accurate [`step_record`](Machine::step_record)
    /// loop. Both paths produce bit-identical architectural state,
    /// statistics and snapshots.
    ///
    /// Unlike the wrappers this method does not return a `Result`: both
    /// the success statistics and the typed error travel in the
    /// [`RunOutcome`], alongside the optional post-mortem snapshot.
    pub fn run_with(&mut self, mut opts: RunOptions<'_>) -> RunOutcome {
        if let Some(cycles) = opts.watchdog {
            self.set_watchdog(cycles);
        }
        let fused_ok = !self.sink.enabled()
            && opts.trace.is_none()
            && self.trusted_schedule
            && !self.force_fallback;
        let result = loop {
            if self.is_halted() {
                // Drain in-flight results.
                self.commit_writes(u64::MAX);
                self.stats.cycles = self.cycle;
                self.stats.mem = self.mem.stats();
                break Ok(self.stats);
            }
            if self.cycle >= opts.budget {
                break Err(SimError::CycleLimit { limit: opts.budget });
            }
            if fused_ok {
                // Returns at a halt or budget boundary (handled by the
                // checks above on the next pass) or with a typed error.
                match self.run_fused(opts.budget) {
                    Ok(()) => continue,
                    Err(e) => break Err(e),
                }
            }
            match self.step_record() {
                Ok(record) => {
                    if let Some(trace) = opts.trace.as_mut() {
                        trace(&record);
                    }
                }
                Err(e) => break Err(e),
            }
        };
        // Drain staged trace events (success and crash paths alike) so
        // sinks are complete when the caller reads them.
        self.sink.flush();
        let report = match &result {
            Err(e) if opts.report => Some(Box::new(self.crash_report(e.clone()))),
            _ => None,
        };
        RunOutcome { result, report }
    }

    /// Runs until the program halts or `max_cycles` elapse, invoking
    /// `trace` after every instruction. Wrapper over
    /// [`Machine::run_with`] with an observer attached.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CycleLimit`] when the budget is exhausted.
    #[deprecated(
        since = "0.1.0",
        note = "use run_with(RunOptions::budget(n).observe(&mut f)) — the unified run entry point"
    )]
    pub fn run_traced(
        &mut self,
        max_cycles: u64,
        mut trace: impl FnMut(&TraceRecord),
    ) -> Result<RunStats, SimError> {
        self.run_with(RunOptions::budget(max_cycles).observe(&mut trace))
            .into_result()
    }

    /// Takes a post-mortem snapshot for `error`: machine position,
    /// regfile digest, the recent-trace ring buffer and a full
    /// restorable [`Snapshot`], so the crash can be re-materialized and
    /// single-stepped. Render it via its `Display` impl (see
    /// `core/report.rs`).
    pub fn crash_report(&self, error: SimError) -> crate::report::CrashReport {
        crate::report::CrashReport {
            error,
            pc: self.pc,
            cycle: self.cycle,
            instrs: self.stats.instrs,
            reg_digest: self.reg_digest(),
            ring_size: self.config.trace_ring,
            trace: self.trace_ring.iter().copied().collect(),
            snapshot: Some(self.snapshot()),
        }
    }

    /// Serializes the complete mutable machine state — registers,
    /// PC/issue state, the writeback scoreboard, the trace ring and the
    /// whole memory system — into a versioned [`Snapshot`]. Restoring it
    /// with [`restore`](Machine::restore) on a machine built from the
    /// same configuration and program continues the run bit-identically
    /// to one that was never interrupted.
    ///
    /// This is a cold-path method: nothing is precomputed or tracked for
    /// it during stepping, so a machine that never snapshots pays zero
    /// cost for the capability.
    pub fn snapshot(&self) -> Snapshot {
        let mut w = SnapshotWriter::new();
        w.section(*b"CORE", |s| {
            s.u64(self.pc as u64);
            s.u64(self.cycle);
            for chunk in self.ibuf {
                s.u32(chunk);
            }
            s.u64(self.ibuf_next as u64);
            match self.pending_branch {
                Some((remaining, target)) => {
                    s.u8(1);
                    s.u32(remaining);
                    s.u64(target as u64);
                }
                None => {
                    s.u8(0);
                    s.u32(0);
                    s.u64(0);
                }
            }
            s.u64(self.watchdog_cycles);
            s.u64(self.last_progress_cycle);
            for v in [
                self.stats.cycles,
                self.stats.instrs,
                self.stats.ops,
                self.stats.exec_ops,
                self.stats.branches,
                self.stats.taken_branches,
                self.stats.ifetch_stall_cycles,
                self.stats.data_stall_cycles,
            ] {
                s.u64(v);
            }
            s.f64(self.stats.freq_mhz);
            self.stats.mem.save_state(s);
        });
        w.section(*b"REGS", |s| {
            for i in 0..128u8 {
                s.u32(self.regs.read(Reg::new(i)));
            }
        });
        w.section(*b"WRNG", |s| {
            s.u64(self.writes.next);
            for bucket in &self.writes.buckets {
                s.u64(bucket.len() as u64);
                for &(r, v) in bucket {
                    s.u8(r.index() as u8);
                    s.u32(v);
                }
            }
        });
        w.section(*b"TRCE", |s| {
            s.u64(self.trace_ring.len() as u64);
            for rec in &self.trace_ring {
                s.u64(rec.cycle);
                s.u64(rec.pc as u64);
                s.u8(rec.ops_executed);
                s.u64(rec.ifetch_stall);
                s.u64(rec.data_stall);
                match rec.branch_taken {
                    Some(t) => {
                        s.u8(1);
                        s.u64(t as u64);
                    }
                    None => {
                        s.u8(0);
                        s.u64(0);
                    }
                }
            }
        });
        w.section(*b"MEMS", |s| self.mem.save_state(s));
        Snapshot::from_bytes(w.finish())
    }

    /// Restores state captured by [`snapshot`](Machine::snapshot). The
    /// machine must have been built from the same configuration and
    /// program image as the one that was snapshotted; the configuration,
    /// program, issue plan and trace sink are untouched.
    ///
    /// # Errors
    ///
    /// [`SnapshotError`] on a bad magic, a different format version,
    /// truncation, checksum failure or state inconsistent with this
    /// machine's configuration. Never panics, whatever the bytes. The
    /// machine state is unspecified after an error — restore again or
    /// discard the machine.
    pub fn restore(&mut self, snap: &Snapshot) -> Result<(), SnapshotError> {
        let reader = SnapshotReader::parse(snap.as_bytes())?;

        let mut s = reader.section(*b"CORE")?;
        self.pc = usize::try_from(s.u64("pc")?).map_err(|_| SnapshotError::Corrupt {
            what: "pc overflows the address space",
        })?;
        self.cycle = s.u64("cycle")?;
        for chunk in &mut self.ibuf {
            *chunk = s.u32("instruction buffer")?;
        }
        let ibuf_next = s.u64("instruction buffer cursor")?;
        if ibuf_next >= self.ibuf.len() as u64 {
            return Err(SnapshotError::Corrupt {
                what: "instruction buffer cursor out of range",
            });
        }
        self.ibuf_next = ibuf_next as usize;
        let branch_flag = s.u8("pending branch flag")?;
        let remaining = s.u32("pending branch slots")?;
        let target = s.u64("pending branch target")?;
        self.pending_branch = match branch_flag {
            0 => None,
            1 => Some((
                remaining,
                usize::try_from(target).map_err(|_| SnapshotError::Corrupt {
                    what: "branch target overflows the address space",
                })?,
            )),
            _ => {
                return Err(SnapshotError::Corrupt {
                    what: "undefined pending-branch flag",
                })
            }
        };
        self.watchdog_cycles = s.u64("watchdog")?;
        self.last_progress_cycle = s.u64("last progress cycle")?;
        self.stats.cycles = s.u64("run stats")?;
        self.stats.instrs = s.u64("run stats")?;
        self.stats.ops = s.u64("run stats")?;
        self.stats.exec_ops = s.u64("run stats")?;
        self.stats.branches = s.u64("run stats")?;
        self.stats.taken_branches = s.u64("run stats")?;
        self.stats.ifetch_stall_cycles = s.u64("run stats")?;
        self.stats.data_stall_cycles = s.u64("run stats")?;
        self.stats.freq_mhz = s.f64("run stats")?;
        self.stats.mem = FullStats::load_state(&mut s)?;

        let mut s = reader.section(*b"REGS")?;
        for i in 0..128u8 {
            self.regs.write(Reg::new(i), s.u32("register")?);
        }

        let mut s = reader.section(*b"WRNG")?;
        self.writes.next = s.u64("writeback ring cursor")?;
        self.writes.pending = 0;
        for bucket in &mut self.writes.buckets {
            bucket.clear();
            let len = s.u64("writeback bucket length")?;
            if len > WRITE_BUCKET_CAP as u64 {
                return Err(SnapshotError::Corrupt {
                    what: "writeback bucket exceeds its capacity",
                });
            }
            for _ in 0..len {
                let idx = s.u8("writeback register")?;
                let reg = Reg::try_new(idx).ok_or(SnapshotError::Corrupt {
                    what: "writeback register out of range",
                })?;
                let value = s.u32("writeback value")?;
                bucket.push((reg, value));
            }
            self.writes.pending += bucket.len();
        }

        let mut s = reader.section(*b"TRCE")?;
        let records = s.u64("trace ring length")?;
        if records > self.config.trace_ring as u64 {
            return Err(SnapshotError::Corrupt {
                what: "trace ring longer than configured",
            });
        }
        self.trace_ring.clear();
        for _ in 0..records {
            let cycle = s.u64("trace record")?;
            let pc =
                usize::try_from(s.u64("trace record")?).map_err(|_| SnapshotError::Corrupt {
                    what: "trace pc overflows the address space",
                })?;
            let ops_executed = s.u8("trace record")?;
            let ifetch_stall = s.u64("trace record")?;
            let data_stall = s.u64("trace record")?;
            let branch_flag = s.u8("trace record")?;
            let branch_target = s.u64("trace record")?;
            let branch_taken = match branch_flag {
                0 => None,
                1 => Some(
                    usize::try_from(branch_target).map_err(|_| SnapshotError::Corrupt {
                        what: "trace branch target overflows the address space",
                    })?,
                ),
                _ => {
                    return Err(SnapshotError::Corrupt {
                        what: "undefined trace branch flag",
                    })
                }
            };
            self.trace_ring.push_back(TraceRecord {
                cycle,
                pc,
                ops_executed,
                ifetch_stall,
                data_stall,
                branch_taken,
            });
        }

        let mut s = reader.section(*b"MEMS")?;
        self.mem.load_state(&mut s)?;
        Ok(())
    }

    /// Runs until the program halts or `max_cycles` elapse, converting
    /// any [`SimError`] into a full [`CrashReport`](crate::CrashReport)
    /// snapshot. Wrapper over [`Machine::run_with`] with report capture.
    ///
    /// # Errors
    ///
    /// Returns the post-mortem snapshot of the typed error.
    #[deprecated(
        since = "0.1.0",
        note = "use run_with(RunOptions::budget(n).with_report()) — the unified run entry point"
    )]
    pub fn run_reported(
        &mut self,
        max_cycles: u64,
    ) -> Result<RunStats, Box<crate::report::CrashReport>> {
        let outcome = self.run_with(RunOptions::budget(max_cycles).with_report());
        match outcome.result {
            Ok(stats) => Ok(stats),
            Err(e) => Err(outcome
                .report
                .unwrap_or_else(|| Box::new(self.crash_report(e)))),
        }
    }

    /// Runs until the program halts or `max_cycles` elapse. Wrapper over
    /// [`Machine::run_with`] with only a budget set.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CycleLimit`] when the budget is exhausted.
    #[deprecated(
        since = "0.1.0",
        note = "use run_with(RunOptions::budget(n)).into_result() — the unified run entry point"
    )]
    pub fn run(&mut self, max_cycles: u64) -> Result<RunStats, SimError> {
        self.run_with(RunOptions::budget(max_cycles)).into_result()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm3270_asm::ProgramBuilder;
    use tm3270_isa::{IssueModel, Op, Opcode};

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }

    fn run_on(config: MachineConfig, f: impl FnOnce(&mut ProgramBuilder)) -> (Machine, RunStats) {
        let mut b = ProgramBuilder::new(config.issue);
        f(&mut b);
        let program = b.build().expect("schedulable");
        let mut m = Machine::new(config, program).expect("encodable");
        let stats = m
            .run_with(RunOptions::budget(10_000_000))
            .into_result()
            .expect("halts");
        (m, stats)
    }

    #[test]
    fn straight_line_arithmetic() {
        let (m, stats) = run_on(MachineConfig::tm3270(), |b| {
            b.op(Op::imm(r(2), 21));
            b.op(Op::imm(r(3), 2));
            b.op(Op::rrr(Opcode::Imul, r(4), r(2), r(3)));
        });
        assert_eq!(m.reg(r(4)), 42);
        assert!(stats.instrs >= 4, "imul latency drains");
    }

    #[test]
    fn loop_executes_correct_iterations() {
        // Sum 1..=10 with a counted loop.
        let (m, stats) = run_on(MachineConfig::tm3270(), |b| {
            b.op(Op::imm(r(2), 10)); // counter
            b.op(Op::imm(r(4), 0)); // sum
            let top = b.bind_here();
            b.op(Op::rrr(Opcode::Iadd, r(4), r(4), r(2)));
            b.op(Op::rri(Opcode::Iaddi, r(2), r(2), -1));
            b.op(Op::rri(Opcode::Igtri, r(3), r(2), 0));
            b.jump_if(r(3), top);
        });
        assert_eq!(m.reg(r(4)), 55);
        assert!(stats.taken_branches == 9 || stats.taken_branches == 10);
    }

    #[test]
    fn loop_works_on_both_machines() {
        for config in [MachineConfig::tm3260(), MachineConfig::tm3270()] {
            let (m, _) = run_on(config, |b| {
                b.op(Op::imm(r(2), 5));
                b.op(Op::imm(r(4), 0));
                let top = b.bind_here();
                b.op(Op::rrr(Opcode::Iadd, r(4), r(4), r(2)));
                b.op(Op::rri(Opcode::Iaddi, r(2), r(2), -1));
                b.op(Op::rri(Opcode::Igtri, r(3), r(2), 0));
                b.jump_if(r(3), top);
            });
            assert_eq!(m.reg(r(4)), 15);
        }
    }

    #[test]
    fn memory_round_trip_through_cache() {
        let (m, stats) = run_on(MachineConfig::tm3270(), |b| {
            b.op(Op::imm(r(2), 0x1000));
            b.op(Op::imm(r(3), 0x55aa_1234_u32 as i32));
            b.op(Op::new(Opcode::St32d, Reg::ONE, &[r(2), r(3)], &[], 0));
            b.op(Op::rri(Opcode::Ld32d, r(4), r(2), 0));
        });
        assert_eq!(m.reg(r(4)), 0x55aa_1234);
        assert!(stats.data_stall_cycles == 0, "allocate-on-write: no stall");
    }

    #[test]
    fn cold_load_miss_stalls() {
        let (_, stats) = run_on(MachineConfig::tm3270(), |b| {
            b.op(Op::imm(r(2), 0x2000));
            b.op(Op::rri(Opcode::Ld32d, r(4), r(2), 0));
        });
        assert!(stats.data_stall_cycles > 0);
        assert!(stats.cpi() > 1.0);
    }

    #[test]
    fn guarded_store_suppressed() {
        let (m, _) = run_on(MachineConfig::tm3270(), |b| {
            b.op(Op::imm(r(2), 0x1000));
            b.op(Op::imm(r(3), 77));
            b.op(Op::imm(r(5), 0)); // guard false
            b.op(Op::new(Opcode::St32d, r(5), &[r(2), r(3)], &[], 0));
            b.op(Op::rri(Opcode::Ld32d, r(4), r(2), 0));
        });
        assert_eq!(m.reg(r(4)), 0, "guarded-off store must not write");
    }

    #[test]
    fn delay_slot_instructions_execute() {
        // The builder pads delay slots with nops; verify an op placed by
        // the scheduler inside the shadow still executes by observing a
        // loop's side effects (covered in loop test) and by counting
        // instrs: a taken branch costs delay+1 instruction issues.
        let config = MachineConfig::tm3270();
        let (_, stats) = run_on(config, |b| {
            b.op(Op::imm(r(2), 1));
            let skip = b.label();
            b.op(Op::rri(Opcode::Igtri, r(3), r(2), 0));
            b.jump_if(r(3), skip);
            b.bind(skip);
            b.op(Op::rrr(Opcode::Iadd, r(4), r(2), r(2)));
        });
        assert!(stats.instrs > 1 + 1 + 5, "delay slots are issued");
    }

    #[test]
    fn tm3260_and_tm3270_time_scale_with_frequency() {
        // A pure-compute loop: cycles are similar, wall-clock differs by
        // the clock ratio.
        let body = |b: &mut ProgramBuilder| {
            b.op(Op::imm(r(2), 200));
            b.op(Op::imm(r(4), 0));
            let top = b.bind_here();
            // Compute the loop condition early, then a serial compute
            // chain long enough to amortize the branch shadow (as real
            // kernels do via unrolling).
            b.op(Op::rri(Opcode::Iaddi, r(2), r(2), -1));
            b.op(Op::rri(Opcode::Igtri, r(3), r(2), 0));
            for _ in 0..10 {
                b.op(Op::rrr(Opcode::Iadd, r(4), r(4), r(2)));
            }
            b.jump_if(r(3), top);
        };
        let (_, s60) = run_on(MachineConfig::tm3260(), body);
        let (_, s70) = run_on(MachineConfig::tm3270(), body);
        let speedup = s60.time_us() / s70.time_us();
        assert!(
            speedup > 1.1 && speedup < 1.8,
            "compute-bound speedup close to the 350/240 clock ratio, got {speedup}"
        );
    }

    #[test]
    fn stats_opi_cpi_sane() {
        let (_, stats) = run_on(MachineConfig::tm3270(), |b| {
            for i in 0..20 {
                b.op(Op::imm(r(10 + (i % 100) as u8), i));
            }
        });
        assert!(stats.opi() > 1.0, "parallel iimms pack");
        assert!(stats.cpi() >= 1.0);
    }

    #[test]
    fn tight_loops_run_from_the_instruction_buffer() {
        // A loop body spanning at most 4 x 32-byte chunks re-executes
        // without touching the instruction cache (§3: the 4-entry
        // instruction buffer decouples the front end).
        let config = MachineConfig::tm3270();
        let mut b = ProgramBuilder::new(config.issue);
        b.op(Op::imm(r(2), 500));
        let top = b.bind_here();
        b.op(Op::rri(Opcode::Iaddi, r(2), r(2), -1));
        b.op(Op::rri(Opcode::Igtri, r(3), r(2), 0));
        b.jump_if(r(3), top);
        let mut m = Machine::new(config, b.build().unwrap()).unwrap();
        let stats = m
            .run_with(RunOptions::budget(10_000_000))
            .into_result()
            .unwrap();
        assert!(
            stats.mem.mem.ifetches < 20,
            "loop served from the instruction buffer, got {} fetches for {} instrs",
            stats.mem.mem.ifetches,
            stats.instrs
        );
        assert!(stats.instrs > 1000);
    }

    #[test]
    fn software_call_return_executes_correctly() {
        // End-to-end: the TriMedia software call/return convention
        // (materialized return address + ijmpi) through the full pipeline
        // with delay slots.
        let config = MachineConfig::tm3270();
        let mut b = ProgramBuilder::new(config.issue);
        let func = b.label();
        let done = b.label();
        let link = r(30);
        b.op(Op::imm(r(2), 5));
        b.call(link, func);
        b.op(Op::rrr(Opcode::Iadd, r(4), r(10), Reg::ZERO));
        b.op(Op::imm(r(2), 11));
        b.call(link, func);
        b.op(Op::rrr(Opcode::Iadd, r(5), r(10), Reg::ZERO));
        b.jump(done);
        b.bind(func);
        b.op(Op::rrr(Opcode::Iadd, r(10), r(2), r(2)));
        b.ret(link);
        b.bind(done);
        b.op(Op::rrr(Opcode::Iadd, r(6), r(4), r(5)));
        let mut m = Machine::new(config, b.build().unwrap()).unwrap();
        m.run_with(RunOptions::budget(1_000_000))
            .into_result()
            .unwrap();
        assert_eq!(m.reg(r(4)), 10, "first call doubled 5");
        assert_eq!(m.reg(r(5)), 22, "second call doubled 11");
        assert_eq!(m.reg(r(6)), 32);
    }

    #[test]
    fn dual_stores_issue_in_one_instruction() {
        // §4.2: both slot 4 and slot 5 carry store units (dual tag
        // copies); two disjoint stores schedule into one instruction and
        // both take effect.
        let config = MachineConfig::tm3270();
        let mut b = ProgramBuilder::new(config.issue);
        b.op(Op::imm(r(2), 0x1000));
        b.op(Op::imm(r(3), 0x11));
        b.op(Op::imm(r(4), 0x22));
        b.op(Op::new(Opcode::St32d, Reg::ONE, &[r(2), r(3)], &[], 0));
        b.op(Op::new(Opcode::St32d, Reg::ONE, &[r(2), r(4)], &[], 4));
        let p = b.build().unwrap();
        // Find the instruction carrying stores: both must be in it.
        let store_instr = p
            .instrs
            .iter()
            .find(|i| i.ops().any(|(_, o)| o.opcode == Opcode::St32d))
            .unwrap();
        assert_eq!(
            store_instr
                .ops()
                .filter(|(_, o)| o.opcode == Opcode::St32d)
                .count(),
            2,
            "dual store in one VLIW instruction"
        );
        let mut m = Machine::new(config, p).unwrap();
        m.run_with(RunOptions::budget(1_000_000))
            .into_result()
            .unwrap();
        assert_eq!(&m.read_data(0x1000, 8)[..], &[0x11, 0, 0, 0, 0x22, 0, 0, 0]);
    }

    #[test]
    fn super_ld32r_counts_against_the_load_port() {
        // SUPER_LD32R is issued in slots 4+5 and uses the single cache
        // access path (§4.2): no other load can share its instruction,
        // but it still doubles load bandwidth vs two plain loads.
        let config = MachineConfig::tm3270();
        let plain = {
            let mut b = ProgramBuilder::new(config.issue);
            b.op(Op::imm(r(2), 0x2000));
            for i in 0..8 {
                b.op(Op::rri(Opcode::Ld32d, r(10 + i), r(2), i as i32 * 4));
            }
            let p = b.build().unwrap();
            Machine::new(config.clone(), p)
                .unwrap()
                .run_with(RunOptions::budget(100_000))
                .into_result()
                .unwrap()
        };
        let wide = {
            let mut b = ProgramBuilder::new(config.issue);
            b.op(Op::imm(r(2), 0x2000));
            for i in 0..4 {
                b.op(Op::imm(r(30 + i), i as i32 * 8));
                b.op(Op::new(
                    Opcode::SuperLd32r,
                    Reg::ONE,
                    &[r(2), r(30 + i)],
                    &[r(10 + 2 * i), r(11 + 2 * i)],
                    0,
                ));
            }
            let p = b.build().unwrap();
            Machine::new(config.clone(), p)
                .unwrap()
                .run_with(RunOptions::budget(100_000))
                .into_result()
                .unwrap()
        };
        assert!(
            wide.instrs < plain.instrs,
            "SUPER_LD32R halves the load-bound instruction count: {} vs {}",
            wide.instrs,
            plain.instrs
        );
    }

    #[test]
    fn trace_records_cover_the_run() {
        let config = MachineConfig::tm3270();
        let mut b = ProgramBuilder::new(config.issue);
        b.op(Op::imm(r(2), 3));
        let top = b.bind_here();
        b.op(Op::rri(Opcode::Iaddi, r(2), r(2), -1));
        b.op(Op::rri(Opcode::Igtri, r(3), r(2), 0));
        b.jump_if(r(3), top);
        let mut m = Machine::new(config, b.build().unwrap()).unwrap();
        let mut records = Vec::new();
        let mut observer = |rec: &TraceRecord| records.push(*rec);
        let stats = m
            .run_with(RunOptions::budget(1_000_000).observe(&mut observer))
            .into_result()
            .unwrap();
        assert_eq!(records.len() as u64, stats.instrs);
        // Cycles are monotonically increasing.
        for w in records.windows(2) {
            assert!(w[1].cycle > w[0].cycle);
        }
        // The taken branches appear in the trace.
        let takes = records
            .iter()
            .filter(|rec| rec.branch_taken.is_some())
            .count();
        assert_eq!(takes as u64, stats.taken_branches);
        // Total executed ops agree.
        let ops: u64 = records.iter().map(|rec| u64::from(rec.ops_executed)).sum();
        assert_eq!(ops, stats.exec_ops);
    }

    #[test]
    fn cycle_limit_detects_runaway() {
        let mut b = ProgramBuilder::new(IssueModel::tm3270());
        let top = b.bind_here();
        b.op(Op::rri(Opcode::Iaddi, r(2), r(2), 1));
        b.jump(top); // infinite loop
        let program = b.build().unwrap();
        let mut m = Machine::new(MachineConfig::tm3270(), program).unwrap();
        assert!(matches!(
            m.run_with(RunOptions::budget(10_000)).into_result(),
            Err(SimError::CycleLimit { limit: 10_000 })
        ));
    }

    #[test]
    fn static_latency_contract_visible() {
        // Reading a load destination before the load latency elapses gets
        // the stale value: schedule two instructions by hand.
        use tm3270_isa::{Instr, Program};
        let mut p = Program::new();
        let mut i0 = Instr::nop();
        i0.place(Op::imm(r(2), 0x1000), 0);
        i0.place(Op::imm(r(3), 0x1234), 1);
        i0.place(Op::imm(r(4), 999), 2);
        // Store warms the line (allocate-on-write-miss: no stall), so the
        // following load hits and its only delay is the 4-cycle latency.
        let mut i1 = Instr::nop();
        i1.place(Op::new(Opcode::St32d, Reg::ONE, &[r(2), r(3)], &[], 0), 3);
        let mut i2 = Instr::nop();
        i2.place(Op::rri(Opcode::Ld32d, r(4), r(2), 0), 4);
        let mut i3 = Instr::nop();
        // Reads r4 one cycle after the load issued: too early (lat 4).
        i3.place(Op::rrr(Opcode::Iadd, r(5), r(4), r(0)), 0);
        p.instrs.push(i0);
        p.instrs.push(i1);
        p.instrs.push(i2);
        p.instrs.push(i3);
        // Pad so the load result lands before the program ends.
        for _ in 0..6 {
            p.instrs.push(Instr::nop());
        }
        let mut m = Machine::new(MachineConfig::tm3270(), p).unwrap();
        m.run_with(RunOptions::budget(1_000_000))
            .into_result()
            .unwrap();
        // The add read r4 before the load's write-back: stale value.
        assert_eq!(m.reg(r(5)), 999, "no interlock: stale value read");
        assert_eq!(m.reg(r(4)), 0x1234, "load eventually landed");
    }

    #[test]
    fn no_progress_watchdog_detects_jump_only_loop() {
        // A loop whose body contains nothing but the back-edge jump:
        // every iteration takes cycles but computes nothing. CycleLimit
        // would eventually catch it; the watchdog catches it fast.
        let mut b = ProgramBuilder::new(IssueModel::tm3270());
        let top = b.bind_here();
        b.jump(top);
        let program = b.build().unwrap();
        let mut m = Machine::new(MachineConfig::tm3270(), program).unwrap();
        m.set_watchdog(500);
        match m.run_with(RunOptions::budget(1_000_000)).into_result() {
            Err(SimError::NoProgress { cycles, .. }) => assert!(cycles >= 500),
            other => panic!("expected NoProgress, got {other:?}"),
        }
    }

    #[test]
    fn watchdog_ignores_productive_loops() {
        // The same loop with one arithmetic op per iteration never trips
        // even a tight watchdog — jumps alone don't count, writes do.
        let mut b = ProgramBuilder::new(IssueModel::tm3270());
        b.op(Op::imm(r(2), 400));
        b.op(Op::imm(r(3), 0));
        let top = b.bind_here();
        b.op(Op::rri(Opcode::Iaddi, r(3), r(3), 1));
        b.op(Op::rri(Opcode::Iaddi, r(2), r(2), -1));
        b.op(Op::rrr(Opcode::Igtr, r(4), r(2), r(0)));
        b.jump_if(r(4), top);
        let program = b.build().unwrap();
        let mut m = Machine::new(MachineConfig::tm3270(), program).unwrap();
        m.set_watchdog(100);
        m.run_with(RunOptions::budget(10_000_000))
            .into_result()
            .unwrap();
        assert_eq!(m.reg(r(3)), 400);
    }

    #[test]
    fn branch_in_delay_slot_is_a_typed_error() {
        use tm3270_isa::{Instr, Program};
        let mut p = Program::new();
        let mut i0 = Instr::nop();
        i0.place(Op::new(Opcode::Jmpi, Reg::ONE, &[], &[], 3), 1);
        let mut i1 = Instr::nop();
        i1.place(Op::new(Opcode::Jmpi, Reg::ONE, &[], &[], 4), 1);
        p.instrs.push(i0);
        p.instrs.push(i1);
        for _ in 0..8 {
            p.instrs.push(Instr::nop());
        }
        p.jump_targets = vec![3, 4];
        let mut m = Machine::new(MachineConfig::tm3270(), p).unwrap();
        assert_eq!(
            m.run_with(RunOptions::budget(1_000_000)).into_result(),
            Err(SimError::BranchInDelaySlot { at: 1 })
        );
    }

    #[test]
    fn strict_config_reports_misaligned_access() {
        let mut config = MachineConfig::tm3270();
        config.mem.strict_access = true;
        let mut b = ProgramBuilder::new(config.issue);
        b.op(Op::rri(Opcode::Ld32d, r(3), r(0), 2));
        let mut m = Machine::new(config, b.build().unwrap()).unwrap();
        match m.run_with(RunOptions::budget(1_000_000)).into_result() {
            Err(SimError::MisalignedAccess {
                addr: 2, size: 4, ..
            }) => {}
            other => panic!("expected MisalignedAccess, got {other:?}"),
        }
    }

    #[test]
    fn strict_config_reports_out_of_bounds_access() {
        let mut config = MachineConfig::tm3270();
        config.mem.strict_access = true;
        config.mem.mem_size = 1 << 16;
        let mut b = ProgramBuilder::new(config.issue);
        b.op(Op::imm(r(2), 1 << 16));
        b.op(Op::rri(Opcode::Ld32d, r(3), r(2), 0));
        let mut m = Machine::new(config, b.build().unwrap()).unwrap();
        match m.run_with(RunOptions::budget(1_000_000)).into_result() {
            Err(SimError::OutOfBoundsAccess { addr, size: 4, .. }) => {
                assert_eq!(addr, 1 << 16);
            }
            other => panic!("expected OutOfBoundsAccess, got {other:?}"),
        }
    }

    #[test]
    fn permissive_config_wraps_instead_of_erroring() {
        // The same out-of-window access under the default (architectural)
        // configuration: the TM3270 has penalty-free non-aligned access
        // and our functional window wraps, so the run completes.
        let mut config = MachineConfig::tm3270();
        config.mem.mem_size = 1 << 16;
        let mut b = ProgramBuilder::new(config.issue);
        b.op(Op::imm(r(2), 1 << 16));
        b.op(Op::rri(Opcode::Ld32d, r(3), r(2), 1));
        let mut m = Machine::new(config, b.build().unwrap()).unwrap();
        m.run_with(RunOptions::budget(1_000_000))
            .into_result()
            .unwrap();
    }

    #[test]
    fn decode_fault_mapping_carries_pc() {
        use tm3270_encode::{DecodeFault, EncodeError};
        assert_eq!(
            SimError::from(DecodeFault {
                instr: 3,
                cause: EncodeError::InvalidOpcode { code: 999 },
            }),
            SimError::InvalidOpcode { pc: 3, code: 999 }
        );
        assert_eq!(
            SimError::from(DecodeFault {
                instr: 7,
                cause: EncodeError::RegisterOutOfRange { index: 200 },
            }),
            SimError::RegisterOutOfRange { pc: 7, index: 200 }
        );
        let other = SimError::from(DecodeFault {
            instr: 1,
            cause: EncodeError::Corrupt("offset table length mismatch"),
        });
        assert!(matches!(other, SimError::Decode { pc: 1, .. }));
    }

    #[test]
    fn truncated_image_yields_typed_decode_error() {
        let mut b = ProgramBuilder::new(IssueModel::tm3270());
        for i in 0..12 {
            b.op(Op::imm(r(2 + (i % 8)), i32::from(i) * 1000));
        }
        let program = b.build().unwrap();
        let mut image = tm3270_encode::encode_program(&program).unwrap();
        image.offsets.truncate(2);
        let err = Machine::from_image(MachineConfig::tm3270(), image).unwrap_err();
        assert_eq!(err.kind(), "Decode");
    }

    #[test]
    fn sim_error_kinds_are_distinct_and_displayed() {
        use tm3270_encode::EncodeError;
        let all = [
            SimError::Encode(EncodeError::BadTarget { index: 9 }),
            SimError::Decode {
                pc: 0,
                cause: EncodeError::Corrupt("x"),
            },
            SimError::InvalidOpcode { pc: 1, code: 2 },
            SimError::RegisterOutOfRange { pc: 1, index: 3 },
            SimError::MisalignedAccess {
                pc: 1,
                addr: 2,
                size: 4,
            },
            SimError::OutOfBoundsAccess {
                pc: 1,
                addr: 2,
                size: 4,
            },
            SimError::NoProgress { pc: 1, cycles: 2 },
            SimError::CycleLimit { limit: 3 },
            SimError::BranchInDelaySlot { at: 4 },
        ];
        let kinds: std::collections::HashSet<&str> = all.iter().map(|e| e.kind()).collect();
        assert_eq!(kinds.len(), all.len(), "every variant has a unique kind");
        for e in &all {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    #[allow(deprecated)] // wrapper coverage: the deprecated entry points must keep delegating
    fn run_with_unifies_the_run_variants() {
        let build = || {
            let config = MachineConfig::tm3270();
            let mut b = ProgramBuilder::new(config.issue);
            b.op(Op::imm(r(2), 6));
            b.op(Op::imm(r(3), 7));
            b.op(Op::rrr(Opcode::Imul, r(4), r(2), r(3)));
            Machine::new(config, b.build().unwrap()).unwrap()
        };

        // Plain run and run_with agree exactly.
        let mut plain = build();
        let plain_stats = plain.run(1_000_000).unwrap();
        let mut unified = build();
        let outcome = unified.run_with(RunOptions::budget(1_000_000));
        assert_eq!(outcome.result, Ok(plain_stats));
        assert!(outcome.report.is_none());
        assert_eq!(unified.reg(r(4)), 42);

        // The observer sees every issued instruction.
        let mut traced = build();
        let mut seen = 0u64;
        let mut observer = |_rec: &TraceRecord| seen += 1;
        let stats = traced
            .run_with(RunOptions::budget(1_000_000).observe(&mut observer))
            .into_result()
            .unwrap();
        assert_eq!(seen, stats.instrs);

        // Budget exhaustion with report capture: the outcome carries both
        // the typed error and the snapshot.
        let mut limited = build();
        let outcome = limited.run_with(RunOptions::budget(1).with_report());
        assert_eq!(outcome.result, Err(SimError::CycleLimit { limit: 1 }));
        let report = outcome.report.expect("report requested");
        assert_eq!(report.error.kind(), "CycleLimit");

        // The watchdog option takes effect for the run.
        let mut b = ProgramBuilder::new(IssueModel::tm3270());
        let top = b.bind_here();
        b.jump(top);
        let mut spin = Machine::new(MachineConfig::tm3270(), b.build().unwrap()).unwrap();
        let outcome = spin.run_with(RunOptions::budget(1_000_000).watchdog(500));
        assert!(matches!(outcome.result, Err(SimError::NoProgress { .. })));
        assert!(outcome.report.is_none(), "report not requested");
    }

    #[test]
    fn crash_report_snapshots_machine_state() {
        let mut config = MachineConfig::tm3270();
        config.mem.strict_access = true;
        let mut b = ProgramBuilder::new(config.issue);
        // Data dependencies force the faulting load into a later
        // instruction, so the trace ring has history when it fires.
        b.op(Op::imm(r(2), 2));
        b.op(Op::rri(Opcode::Iaddi, r(4), r(2), 0));
        b.op(Op::rri(Opcode::Ld32d, r(3), r(4), 0));
        let mut m = Machine::new(config, b.build().unwrap()).unwrap();
        let outcome = m.run_with(RunOptions::budget(1_000_000).with_report());
        assert!(outcome.result.is_err());
        let report = outcome.report.expect("crash report captured");
        assert_eq!(report.error.kind(), "MisalignedAccess");
        assert_eq!(report.reg_digest, m.reg_digest());
        assert!(!report.trace.is_empty(), "ring buffer captured history");
        let rendered = report.to_string();
        for needle in ["crash report", "MisalignedAccess", "pc", "trace"] {
            assert!(rendered.contains(needle), "missing {needle}: {rendered}");
        }
    }
}
