//! Human-readable run reports and crash-report rendering.

use crate::pipeline::{RunStats, SimError, TraceRecord};
use crate::snapshot::Snapshot;
use std::fmt::Write as _;

/// A post-mortem snapshot taken when a run ends in a [`SimError`].
///
/// Produced by [`Machine::crash_report`](crate::Machine::crash_report);
/// its `Display` impl renders the report the fault-injection campaign
/// prints for failing runs: the typed error, where the machine was, a
/// digest of the register file and the last few trace records.
#[derive(Debug, Clone, PartialEq)]
pub struct CrashReport {
    /// The error that ended the run.
    pub error: SimError,
    /// Program counter at the time of the error.
    pub pc: usize,
    /// Cycle count at the time of the error.
    pub cycle: u64,
    /// VLIW instructions issued before the error.
    pub instrs: u64,
    /// FNV-1a digest of the 128 architectural registers.
    pub reg_digest: u64,
    /// Configured capacity of the crash-trace ring buffer
    /// (`MachineConfig::trace_ring`; default
    /// [`TRACE_RING`](crate::pipeline::TRACE_RING)).
    pub ring_size: usize,
    /// The last few executed instructions, oldest first (ring buffer of
    /// up to [`ring_size`](Self::ring_size) records).
    pub trace: Vec<TraceRecord>,
    /// A restorable snapshot of the machine at the moment of the error:
    /// feed it to [`Machine::restore`](crate::Machine::restore) on a
    /// machine built from the same configuration and image to
    /// re-materialize and single-step the crash. `None` when the machine
    /// never came to life (e.g. the image failed to decode).
    pub snapshot: Option<Snapshot>,
}

impl std::fmt::Display for CrashReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "=== crash report ===")?;
        writeln!(f, "error : {} ({})", self.error, self.error.kind())?;
        writeln!(
            f,
            "state : pc {}  cycle {}  instrs {}  regfile digest {:#018x}",
            self.pc, self.cycle, self.instrs, self.reg_digest
        )?;
        if self.trace.is_empty() {
            writeln!(f, "trace : (no instructions executed)")?;
        } else {
            writeln!(
                f,
                "trace : last {} instructions (ring size {})",
                self.trace.len(),
                self.ring_size
            )?;
            for rec in &self.trace {
                writeln!(
                    f,
                    "  cycle {:>8}  pc {:>6}  ops {}  stalls i/d {}/{}{}",
                    rec.cycle,
                    rec.pc,
                    rec.ops_executed,
                    rec.ifetch_stall,
                    rec.data_stall,
                    match rec.branch_taken {
                        Some(t) => format!("  -> branch to {t}"),
                        None => String::new(),
                    }
                )?;
            }
        }
        Ok(())
    }
}

impl RunStats {
    /// Formats a multi-line report of the run: issue statistics, stall
    /// breakdown, cache and prefetch behaviour, DRAM traffic.
    ///
    /// # Examples
    ///
    /// ```
    /// # use tm3270_asm::ProgramBuilder;
    /// # use tm3270_core::{Machine, MachineConfig};
    /// # use tm3270_isa::{Op, Reg};
    /// # let config = MachineConfig::tm3270();
    /// # let mut b = ProgramBuilder::new(config.issue);
    /// # b.op(Op::imm(Reg::new(2), 1));
    /// # let mut m = Machine::new(config, b.build().unwrap()).unwrap();
    /// let stats = m
    ///     .run_with(tm3270_core::RunOptions::budget(1_000_000))
    ///     .into_result()?;
    /// println!("{}", stats.report());
    /// # Ok::<(), tm3270_core::SimError>(())
    /// ```
    pub fn report(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "cycles {:>12}   instrs {:>12}   time {:>10.1} us @ {} MHz",
            self.cycles,
            self.instrs,
            self.time_us(),
            self.freq_mhz
        );
        let _ = writeln!(
            s,
            "CPI {:>8.3}   OPI {:>8.3}   ops {} ({} executed)",
            self.cpi(),
            self.opi(),
            self.ops,
            self.exec_ops
        );
        let _ = writeln!(
            s,
            "branches {} ({} taken)   stalls: ifetch {} / data {}",
            self.branches, self.taken_branches, self.ifetch_stall_cycles, self.data_stall_cycles
        );
        let d = &self.mem.dcache;
        let _ = writeln!(
            s,
            "dcache: {} hits, {} partial, {} misses, {} fills, {} allocs, {} copybacks ({} B)",
            d.hits, d.partial_hits, d.misses, d.fills, d.allocations, d.copybacks, d.copyback_bytes
        );
        let i = &self.mem.icache;
        let _ = writeln!(
            s,
            "icache: {} hits, {} misses ({} chunk fetches)",
            i.hits, i.misses, self.mem.mem.ifetches
        );
        let p = &self.mem.prefetch;
        if p.issued > 0 {
            let _ = writeln!(
                s,
                "prefetch: {} issued, {} hits, {} filtered, {} dropped",
                p.issued, d.prefetch_hits, p.filtered, p.dropped
            );
        }
        let _ = writeln!(
            s,
            "dram: {} transfers ({} demand), {} bytes, {:.0} busy cycles",
            self.mem.dram.transfers,
            self.mem.dram.demand_transfers,
            self.mem.dram.bytes,
            self.mem.dram.busy_cpu_cycles
        );
        s
    }
}

#[cfg(test)]
mod tests {
    use crate::{Machine, MachineConfig};
    use tm3270_asm::ProgramBuilder;
    use tm3270_isa::{Op, Opcode, Reg};

    #[test]
    fn report_mentions_all_sections() {
        let config = MachineConfig::tm3270();
        let mut b = ProgramBuilder::new(config.issue);
        b.op(Op::imm(Reg::new(2), 0x1000));
        b.op(Op::rri(Opcode::Ld32d, Reg::new(3), Reg::new(2), 0));
        let mut m = Machine::new(config, b.build().unwrap()).unwrap();
        let stats = m
            .run_with(crate::RunOptions::budget(1_000_000))
            .into_result()
            .unwrap();
        let report = stats.report();
        for needle in ["cycles", "CPI", "dcache", "icache", "dram"] {
            assert!(report.contains(needle), "missing {needle}: {report}");
        }
    }
}
