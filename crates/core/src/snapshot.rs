//! The opaque machine-snapshot handle.
//!
//! A [`Snapshot`] is the serialized complete mutable state of a
//! [`Machine`](crate::Machine): registers, program counter and issue
//! state, the writeback scoreboard, the trace ring and the whole memory
//! system (flat memory, cache arrays, prefetch unit, DRAM channel,
//! statistics). It is produced by [`Machine::snapshot`](crate::Machine::snapshot)
//! and consumed by [`Machine::restore`](crate::Machine::restore); the
//! bytes use the versioned container of `tm3270_encode::snapshot`
//! (magic, format version, length-framed sections, checksum trailer),
//! so a snapshot can be persisted, embedded in a crash report and
//! re-materialized in another process — restore on arbitrary bytes
//! degrades into a typed [`SnapshotError`], never a panic.

pub use tm3270_encode::SnapshotError;

/// The serialized complete mutable state of a machine. Opaque bytes in
/// the versioned `TM3S` container; see the module docs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    bytes: Vec<u8>,
}

impl Snapshot {
    /// Wraps raw snapshot bytes (e.g. read back from a checkpoint file).
    /// Validation happens at [`Machine::restore`](crate::Machine::restore)
    /// time, not here.
    pub fn from_bytes(bytes: Vec<u8>) -> Snapshot {
        Snapshot { bytes }
    }

    /// The raw container bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Consumes the snapshot into its raw bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Size of the serialized snapshot in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the snapshot holds no bytes at all (a default-constructed
    /// placeholder, never a valid machine state).
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// The snapshot as lowercase hex, for embedding in JSON documents.
    pub fn to_hex(&self) -> String {
        tm3270_encode::snapshot::to_hex(&self.bytes)
    }

    /// Parses the hex produced by [`to_hex`](Self::to_hex).
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Corrupt`] on malformed hex.
    pub fn from_hex(s: &str) -> Result<Snapshot, SnapshotError> {
        Ok(Snapshot {
            bytes: tm3270_encode::snapshot::from_hex(s)?,
        })
    }
}
