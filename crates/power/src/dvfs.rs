//! Dynamic voltage and frequency scaling (paper §5.2).
//!
//! The TM3270 is a fully static design with asynchronous bus interfaces,
//! so "the operating frequency can be changed on the fly, independent of
//! the rest of the SoC"; functional operation is guaranteed down to 0.8 V
//! at a reduced maximum frequency. This module picks the operating point
//! for a real-time workload: the minimum frequency that meets the
//! deadline, and the lowest voltage that supports that frequency.

use crate::PowerModel;
use tm3270_core::RunStats;

/// A voltage/frequency operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatingPoint {
    /// Supply voltage in volts.
    pub voltage: f64,
    /// Clock frequency in MHz.
    pub freq_mhz: f64,
    /// Estimated power in mW for the rated workload.
    pub power_mw: f64,
}

/// The voltage/frequency envelope of the realization (§5 and §5.2):
/// 350 MHz at the worst-case corner at nominal voltage; a conservative
/// linear frequency derating down to the guaranteed-functional 0.8 V.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Envelope {
    /// Nominal supply voltage (1.2 V).
    pub v_nominal: f64,
    /// Lowest guaranteed-functional voltage (0.8 V).
    pub v_min: f64,
    /// Maximum frequency at the nominal voltage (350 MHz).
    pub f_max_nominal: f64,
    /// Maximum frequency at `v_min` (derated).
    pub f_max_vmin: f64,
}

impl Envelope {
    /// The paper's 90 nm low-power realization.
    pub fn nm90() -> Envelope {
        Envelope {
            v_nominal: 1.2,
            v_min: 0.8,
            f_max_nominal: 350.0,
            f_max_vmin: 175.0,
        }
    }

    /// The maximum frequency supported at `voltage` (linear interpolation
    /// between the two characterized points).
    pub fn f_max(&self, voltage: f64) -> f64 {
        let v = voltage.clamp(self.v_min, self.v_nominal);
        let t = (v - self.v_min) / (self.v_nominal - self.v_min);
        self.f_max_vmin + t * (self.f_max_nominal - self.f_max_vmin)
    }

    /// The minimum voltage supporting `freq_mhz`, or `None` if the
    /// frequency exceeds the envelope.
    pub fn v_min_for(&self, freq_mhz: f64) -> Option<f64> {
        if freq_mhz > self.f_max_nominal {
            return None;
        }
        if freq_mhz <= self.f_max_vmin {
            return Some(self.v_min);
        }
        let t = (freq_mhz - self.f_max_vmin) / (self.f_max_nominal - self.f_max_vmin);
        Some(self.v_min + t * (self.v_nominal - self.v_min))
    }
}

/// The frequency required to execute `stats.cycles` of work within
/// `budget_us` microseconds of real time (the paper's "MP3 decoding is
/// performed in approximately 8 MHz").
pub fn required_frequency_mhz(stats: &RunStats, budget_us: f64) -> f64 {
    stats.cycles as f64 / budget_us
}

/// Picks the lowest-power operating point that meets a real-time budget.
///
/// Returns `None` if the workload does not fit the envelope even at the
/// maximum frequency.
pub fn operating_point(
    model: &PowerModel,
    envelope: &Envelope,
    stats: &RunStats,
    budget_us: f64,
) -> Option<OperatingPoint> {
    let f = required_frequency_mhz(stats, budget_us);
    let v = envelope.v_min_for(f)?;
    Some(OperatingPoint {
        voltage: v,
        freq_mhz: f,
        power_mw: model.power_mw(stats, v, f),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Activity;
    use tm3270_core::RunStats;

    fn stats(cycles: u64) -> RunStats {
        RunStats {
            cycles,
            instrs: cycles,
            ops: cycles * 4,
            exec_ops: cycles * 4,
            branches: 0,
            taken_branches: 0,
            ifetch_stall_cycles: 0,
            data_stall_cycles: 0,
            freq_mhz: 350.0,
            mem: tm3270_mem::FullStats {
                mem: Default::default(),
                dcache: Default::default(),
                icache: Default::default(),
                prefetch: Default::default(),
                dram: Default::default(),
            },
        }
    }

    fn model() -> PowerModel {
        // Reference with the same activity shape as `stats`, so module
        // activities are 1 except where noted.
        let reference = stats(1000);
        let _ = Activity::from_stats(&reference);
        PowerModel::calibrated(&reference)
    }

    #[test]
    fn envelope_endpoints() {
        let e = Envelope::nm90();
        assert_eq!(e.f_max(1.2), 350.0);
        assert_eq!(e.f_max(0.8), 175.0);
        assert_eq!(e.v_min_for(175.0), Some(0.8));
        assert_eq!(e.v_min_for(350.0), Some(1.2));
        assert_eq!(e.v_min_for(351.0), None);
    }

    #[test]
    fn mp3_style_workload_runs_at_vmin() {
        // A workload needing ~8 MHz (paper §5.2) sits far below the 0.8 V
        // frequency ceiling, so it runs at the minimum voltage.
        let m = model();
        let e = Envelope::nm90();
        // 8 cycles of work per microsecond = 8 MHz requirement.
        let s = stats(8_000_000);
        let op = operating_point(&m, &e, &s, 1_000_000.0).expect("fits");
        assert!((op.freq_mhz - 8.0).abs() < 1e-9);
        assert_eq!(op.voltage, 0.8);
        // Single-digit milliwatts, like the paper's 3.32 mW.
        assert!(op.power_mw < 10.0, "got {} mW", op.power_mw);
    }

    #[test]
    fn tight_deadlines_need_more_voltage() {
        let m = model();
        let e = Envelope::nm90();
        let s = stats(300_000_000);
        // 300M cycles in 1 s -> 300 MHz: above the 0.8 V ceiling.
        let op = operating_point(&m, &e, &s, 1_000_000.0).expect("fits");
        assert!(op.voltage > 0.8 && op.voltage <= 1.2);
        // And in 0.5 s -> 600 MHz: impossible.
        assert!(operating_point(&m, &e, &s, 500_000.0).is_none());
    }

    #[test]
    fn lower_voltage_points_use_quadratically_less_power() {
        let m = model();
        let e = Envelope::nm90();
        let s = stats(100_000_000); // 100 MHz for a 1 s budget
        let op = operating_point(&m, &e, &s, 1_000_000.0).unwrap();
        assert_eq!(op.voltage, 0.8);
        // Same frequency at nominal voltage costs (1.2/0.8)^2 = 2.25x.
        let nominal = m.power_mw(&s, 1.2, op.freq_mhz);
        assert!((nominal / op.power_mw - 2.25).abs() < 0.05);
    }
}
