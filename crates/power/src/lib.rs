//! # tm3270-power
//!
//! Area and power models of the TM3270 realization (paper §5, Table 4,
//! Figure 6).
//!
//! The paper reports, for a low-power 90 nm process at 1.2 V:
//!
//! * a module-level **area** breakdown totalling 8.08 mm², with the
//!   instruction- and data-cache SRAMs making up roughly 50%;
//! * a module-level **power** breakdown for an MP3-decoder workload
//!   totalling 0.935 mW/MHz, with dynamic power following `C V^2 f`,
//!   aggressive clock gating (~70 functional clock domains — stalled
//!   logic is not clocked), and therefore a strong dependence on OPI
//!   (operations per VLIW instruction) and CPI (cycles per instruction)
//!   rather than on the specific application;
//! * voltage scaling from 1.2 V to 0.8 V reducing power quadratically to
//!   0.415 mW/MHz, giving 3.32 mW for the ~8 MHz MP3 decode.
//!
//! [`AreaModel`] derives the Table 4 areas from the machine's cache
//! geometries and calibrated logic constants, so configuration ablations
//! (say, a 16 KB data cache) produce meaningful area deltas.
//! [`PowerModel`] turns simulator [`RunStats`] into a module power
//! breakdown: per-module event energies are calibrated such that the MP3
//! reference workload reproduces the Table 4 ratings exactly, and other
//! workloads scale with their measured activity (issue rate, operation
//! rate, memory rate, bus traffic) — reproducing the paper's observation
//! that larger-CPI applications have a lower mW/MHz with a relatively
//! larger BIU share.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod dvfs;

use tm3270_core::{MachineConfig, RunStats};

/// The major design modules of the floorplan (Figure 6 / Table 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Module {
    /// Instruction fetch unit (includes the instruction-cache SRAMs).
    Ifu,
    /// Operation decode.
    Decode,
    /// The 128-entry, 15-read/5-write-port register file.
    Regfile,
    /// All functional units.
    Execute,
    /// Load/store unit (includes the data-cache SRAMs).
    Ls,
    /// Bus interface unit.
    Biu,
    /// Memory-mapped IO peripherals.
    Mmio,
}

impl Module {
    /// All modules in Table 4 order.
    pub fn all() -> [Module; 7] {
        [
            Module::Ifu,
            Module::Decode,
            Module::Regfile,
            Module::Execute,
            Module::Ls,
            Module::Biu,
            Module::Mmio,
        ]
    }

    /// The Table 4 module name.
    pub fn name(self) -> &'static str {
        match self {
            Module::Ifu => "IFU",
            Module::Decode => "Decode",
            Module::Regfile => "Regfile",
            Module::Execute => "Execute",
            Module::Ls => "LS",
            Module::Biu => "BIU",
            Module::Mmio => "MMIO",
        }
    }
}

/// One row of an area or power breakdown.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModuleValue {
    /// The module.
    pub module: Module,
    /// Area in mm² or power in mW/MHz.
    pub value: f64,
}

/// Area model: SRAM macro area plus calibrated per-module logic area.
///
/// Calibrated against Table 4: 192 KB of cache SRAM is ~50% of the
/// 8.08 mm² total, giving ~0.021 mm²/KB in the low-power 90 nm process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaModel {
    /// SRAM area per KB (mm²).
    pub sram_mm2_per_kb: f64,
    /// Register-file area per port-bit (mm²): 128 x 32 bits x 20 ports.
    pub regfile_mm2_per_port_bit: f64,
    /// Fixed logic areas per module (mm²), in [`Module::all`] order.
    pub logic: [f64; 7],
}

impl AreaModel {
    /// The model calibrated to the paper's 90 nm realization.
    pub fn nm90() -> AreaModel {
        AreaModel {
            sram_mm2_per_kb: 0.021,
            // 0.97 mm² / (128 regs * 32 bits * 20 ports)
            regfile_mm2_per_port_bit: 0.97 / (128.0 * 32.0 * 20.0),
            // [ifu, decode, regfile(extra), execute, ls, biu, mmio]
            logic: [0.116, 0.05, 0.0, 1.53, 0.912, 0.24, 0.23],
        }
    }

    /// The module-level area breakdown for a machine configuration.
    pub fn breakdown(&self, config: &MachineConfig) -> Vec<ModuleValue> {
        let icache_kb = f64::from(config.mem.icache.size) / 1024.0;
        let dcache_kb = f64::from(config.mem.dcache.size) / 1024.0;
        // TM3270 register file: 128 x 32-bit, 10 source + 5 guard read
        // ports and 5 write ports (§3).
        let ports = 20.0;
        let regfile = 128.0 * 32.0 * ports * self.regfile_mm2_per_port_bit;
        Module::all()
            .iter()
            .enumerate()
            .map(|(i, &m)| {
                let sram = match m {
                    Module::Ifu => icache_kb * self.sram_mm2_per_kb,
                    Module::Ls => dcache_kb * self.sram_mm2_per_kb,
                    _ => 0.0,
                };
                let extra = if m == Module::Regfile { regfile } else { 0.0 };
                ModuleValue {
                    module: m,
                    value: sram + extra + self.logic[i],
                }
            })
            .collect()
    }

    /// Total area in mm².
    pub fn total(&self, config: &MachineConfig) -> f64 {
        self.breakdown(config).iter().map(|m| m.value).sum()
    }

    /// Fraction of the total area occupied by cache SRAMs (paper: ~50%).
    pub fn sram_fraction(&self, config: &MachineConfig) -> f64 {
        let sram = (f64::from(config.mem.icache.size) + f64::from(config.mem.dcache.size)) / 1024.0
            * self.sram_mm2_per_kb;
        sram / self.total(config)
    }
}

/// Table 4 power ratings in mW/MHz at 1.2 V for the MP3 reference
/// workload, in [`Module::all`] order.
///
/// Note: the paper's per-module rows sum to 0.999 mW/MHz while its
/// printed total is 0.935; we keep the published rows and use their sum
/// ([`TABLE4_POWER_TOTAL`]) as the consistent total.
pub const TABLE4_POWER: [f64; 7] = [0.272, 0.022, 0.170, 0.255, 0.266, 0.002, 0.012];

/// Sum of the published Table 4 rows (see [`TABLE4_POWER`]).
pub const TABLE4_POWER_TOTAL: f64 = 0.999;

/// Per-cycle activity factors extracted from a simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Activity {
    /// VLIW instructions per cycle (1/CPI): drives the IFU.
    pub issue_rate: f64,
    /// Executed operations per cycle (OPI/CPI): drives decode, the
    /// register file and the (clock-gated) functional units.
    pub op_rate: f64,
    /// Data-memory operations per cycle: drives the load/store unit.
    pub mem_rate: f64,
    /// DRAM bytes per cycle: drives the bus interface unit.
    pub bus_rate: f64,
}

impl Activity {
    /// Extracts activity factors from run statistics.
    pub fn from_stats(stats: &RunStats) -> Activity {
        let cycles = stats.cycles.max(1) as f64;
        Activity {
            issue_rate: stats.instrs as f64 / cycles,
            op_rate: stats.exec_ops as f64 / cycles,
            mem_rate: (stats.mem.mem.loads + stats.mem.mem.stores) as f64 / cycles,
            bus_rate: stats.mem.dram.bytes as f64 / cycles,
        }
    }
}

/// Power model: Table 4 ratings scaled by activity (clock gating) and
/// `V^2` (dynamic power).
#[derive(Debug, Clone, PartialEq)]
pub struct PowerModel {
    /// Reference activity (the MP3 workload of Table 4).
    reference: Activity,
    /// Nominal supply voltage (1.2 V).
    v_nominal: f64,
    /// Static power floor per module (mW/MHz; "negligible", §5.2).
    static_floor: f64,
}

impl PowerModel {
    /// Calibrates the model so `mp3_reference` reproduces Table 4
    /// exactly.
    pub fn calibrated(mp3_reference: &RunStats) -> PowerModel {
        PowerModel {
            reference: Activity::from_stats(mp3_reference),
            v_nominal: 1.2,
            static_floor: 1e-4,
        }
    }

    /// A model with the paper's nominal MP3 signature (OPI 4.5, CPI 1.0)
    /// as the reference, for use without running the proxy.
    pub fn nominal() -> PowerModel {
        PowerModel {
            reference: Activity {
                issue_rate: 1.0,
                op_rate: 4.5,
                mem_rate: 0.4,
                bus_rate: 0.02,
            },
            v_nominal: 1.2,
            static_floor: 1e-4,
        }
    }

    fn module_activity(&self, m: Module, a: &Activity) -> f64 {
        let rel = |x: f64, r: f64| if r > 0.0 { x / r } else { 1.0 };
        match m {
            Module::Ifu => rel(a.issue_rate, self.reference.issue_rate),
            Module::Decode | Module::Regfile | Module::Execute => {
                rel(a.op_rate, self.reference.op_rate)
            }
            Module::Ls => rel(a.mem_rate, self.reference.mem_rate),
            Module::Biu => rel(a.bus_rate, self.reference.bus_rate),
            Module::Mmio => 1.0,
        }
    }

    /// The module power breakdown in mW/MHz at `voltage` for a run.
    pub fn breakdown(&self, stats: &RunStats, voltage: f64) -> Vec<ModuleValue> {
        let a = Activity::from_stats(stats);
        let vscale = (voltage / self.v_nominal).powi(2);
        Module::all()
            .iter()
            .zip(TABLE4_POWER)
            .map(|(&m, rating)| ModuleValue {
                module: m,
                value: rating * self.module_activity(m, &a) * vscale + self.static_floor,
            })
            .collect()
    }

    /// Total power in mW/MHz at `voltage`.
    pub fn total_mw_per_mhz(&self, stats: &RunStats, voltage: f64) -> f64 {
        self.breakdown(stats, voltage).iter().map(|m| m.value).sum()
    }

    /// Absolute power in mW for a workload requiring `freq_mhz` to meet
    /// real time (the paper's MP3 number: ~8 MHz at 0.8 V = 3.32 mW).
    pub fn power_mw(&self, stats: &RunStats, voltage: f64, freq_mhz: f64) -> f64 {
        self.total_mw_per_mhz(stats, voltage) * freq_mhz
    }
}

/// The paper's §5.2 voltage-scaling arithmetic, independent of any run:
/// `0.935 * (0.8^2 / 1.2^2) = 0.415 mW/MHz`.
pub fn scale_rating(rating_mw_per_mhz: f64, from_v: f64, to_v: f64) -> f64 {
    rating_mw_per_mhz * (to_v * to_v) / (from_v * from_v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm3270_core::MachineConfig;

    #[test]
    fn area_totals_match_table4() {
        let model = AreaModel::nm90();
        let total = model.total(&MachineConfig::tm3270());
        assert!(
            (total - 8.08).abs() < 0.2,
            "Table 4 total 8.08 mm², got {total:.2}"
        );
    }

    #[test]
    fn sram_is_about_half_the_area() {
        let model = AreaModel::nm90();
        let f = model.sram_fraction(&MachineConfig::tm3270());
        assert!((0.4..0.6).contains(&f), "paper: ~50%, got {f:.2}");
    }

    #[test]
    fn ls_is_largest_module_and_table4_rows_match() {
        let model = AreaModel::nm90();
        let breakdown = model.breakdown(&MachineConfig::tm3270());
        let get = |m: Module| {
            breakdown
                .iter()
                .find(|v| v.module == m)
                .map(|v| v.value)
                .unwrap()
        };
        let max = breakdown.iter().map(|v| v.value).fold(0.0, f64::max);
        assert_eq!(get(Module::Ls), max, "LS largest with D$ SRAM included");
        assert!((get(Module::Ifu) - 1.46).abs() < 0.05);
        assert!((get(Module::Ls) - 3.60).abs() < 0.05);
        assert!((get(Module::Regfile) - 0.97).abs() < 0.05);
    }

    #[test]
    fn smaller_dcache_shrinks_area() {
        let model = AreaModel::nm90();
        let d = model.total(&MachineConfig::config_d());
        let b = model.total(&MachineConfig::config_b());
        assert!(b < d, "16 KB cache smaller than 128 KB: {b:.2} < {d:.2}");
        // 112 KB of SRAM difference ~ 2.35 mm².
        assert!((d - b - 112.0 * 0.021).abs() < 0.01);
    }

    fn fake_stats(cycles: u64, instrs: u64, exec_ops: u64, bus_bytes: u64) -> RunStats {
        RunStats {
            cycles,
            instrs,
            ops: exec_ops,
            exec_ops,
            branches: 0,
            taken_branches: 0,
            ifetch_stall_cycles: 0,
            data_stall_cycles: 0,
            freq_mhz: 350.0,
            mem: tm3270_mem::FullStats {
                mem: Default::default(),
                dcache: Default::default(),
                icache: Default::default(),
                prefetch: Default::default(),
                dram: tm3270_mem::DramStats {
                    transfers: 0,
                    demand_transfers: 0,
                    bytes: bus_bytes,
                    busy_cpu_cycles: 0.0,
                },
            },
        }
    }

    #[test]
    fn reference_run_reproduces_table4_total() {
        // A run with exactly the reference activity reproduces the 0.935
        // mW/MHz total.
        let stats = fake_stats(1000, 1000, 4500, 20);
        let model = PowerModel::calibrated(&stats);
        let total = model.total_mw_per_mhz(&stats, 1.2);
        assert!((total - TABLE4_POWER_TOTAL).abs() < 0.01, "got {total:.3}");
    }

    #[test]
    fn voltage_scaling_is_quadratic() {
        let stats = fake_stats(1000, 1000, 4500, 20);
        let model = PowerModel::calibrated(&stats);
        let p08 = model.total_mw_per_mhz(&stats, 0.8);
        let expect = TABLE4_POWER_TOTAL * (0.8f64 / 1.2).powi(2);
        assert!((p08 - expect).abs() < 0.01, "got {p08:.3}");
        // The paper's MP3 bottom line shape: ~8 MHz real-time decode at
        // 0.8 V lands in single-digit milliwatts (paper: 3.32 mW from its
        // 0.935 total; our row-sum total gives ~3.55 mW).
        let mw = model.power_mw(&stats, 0.8, 8.0);
        assert!((3.0..4.0).contains(&mw), "got {mw:.2} mW");
    }

    #[test]
    fn stalled_runs_use_less_power_but_more_biu_share() {
        let reference = fake_stats(1000, 1000, 4500, 20);
        let model = PowerModel::calibrated(&reference);
        // Same work, 3x the cycles (CPI 3), 10x the bus traffic.
        let stalled = fake_stats(3000, 1000, 4500, 200);
        let p_ref = model.total_mw_per_mhz(&reference, 1.2);
        let p_stall = model.total_mw_per_mhz(&stalled, 1.2);
        assert!(
            p_stall < p_ref,
            "clock gating: stalled {p_stall:.3} < busy {p_ref:.3}"
        );
        let share = |stats: &RunStats| {
            let b = model.breakdown(stats, 1.2);
            let biu = b
                .iter()
                .find(|v| v.module == Module::Biu)
                .map(|v| v.value)
                .unwrap();
            biu / b.iter().map(|v| v.value).sum::<f64>()
        };
        assert!(
            share(&stalled) > share(&reference),
            "paper §5.2: larger CPI shifts power share to the BIU"
        );
    }

    #[test]
    fn scale_rating_matches_paper_arithmetic() {
        let p = scale_rating(0.935, 1.2, 0.8);
        assert!((p - 0.4155).abs() < 0.001);
    }

    #[test]
    fn nominal_model_is_usable() {
        let stats = fake_stats(1000, 950, 4300, 25);
        let model = PowerModel::nominal();
        let total = model.total_mw_per_mhz(&stats, 1.2);
        assert!(total > 0.5 && total < 1.5, "got {total}");
    }
}
