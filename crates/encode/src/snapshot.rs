//! The versioned binary container for machine snapshots.
//!
//! A snapshot is a self-describing byte blob:
//!
//! ```text
//! +--------+---------+------------------------------------+----------+
//! | magic  | version | sections: tag(4) + len(8) + bytes  | checksum |
//! | "TM3S" |   u32   |            (repeated)              | FNV-1a64 |
//! +--------+---------+------------------------------------+----------+
//! ```
//!
//! All integers are little-endian; `f64` state travels as raw IEEE-754
//! bits so restore is bit-exact. The trailing checksum is FNV-1a 64 over
//! everything before it, so corruption is detected up front, before any
//! section is interpreted. Decoding never panics: every failure mode —
//! truncation, a version from the future, flipped bits — is a typed
//! [`SnapshotError`].
//!
//! The container knows nothing about machines; `tm3270-mem` and
//! `tm3270-core` define what goes inside the sections. Bumping
//! [`SNAPSHOT_VERSION`] is required whenever any section's layout
//! changes — old blobs are then rejected with
//! [`SnapshotError::VersionMismatch`] rather than misread.

use std::error::Error;
use std::fmt;

/// Magic bytes identifying a machine snapshot blob.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"TM3S";

/// Current snapshot format version. Bump on any layout change of any
/// section; readers reject every other version.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Typed failures of snapshot decoding. Decoding never panics; arbitrary
/// bytes degrade into one of these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The blob does not start with [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// The blob was written by a different format version.
    VersionMismatch {
        /// The version field found in the blob.
        found: u32,
        /// The version this reader understands ([`SNAPSHOT_VERSION`]).
        expected: u32,
    },
    /// The blob ends before the named item is complete.
    Truncated {
        /// What was being read when the bytes ran out.
        what: &'static str,
    },
    /// The blob is internally inconsistent (checksum mismatch, impossible
    /// lengths, state that violates an invariant of the restored type).
    Corrupt {
        /// What inconsistency was detected.
        what: &'static str,
    },
    /// A required section is absent from the blob.
    MissingSection {
        /// The four-byte section tag, rendered as text.
        tag: [u8; 4],
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a snapshot (bad magic)"),
            SnapshotError::VersionMismatch { found, expected } => {
                write!(f, "snapshot format version {found} (expected {expected})")
            }
            SnapshotError::Truncated { what } => write!(f, "snapshot truncated in {what}"),
            SnapshotError::Corrupt { what } => write!(f, "corrupt snapshot: {what}"),
            SnapshotError::MissingSection { tag } => {
                write!(f, "snapshot section `{}` missing", tag.escape_ascii())
            }
        }
    }
}

impl Error for SnapshotError {}

/// FNV-1a 64 over `bytes` — the integrity trailer of the container.
/// Public so tests (and external tools) can re-seal a deliberately
/// modified blob.
pub fn snapshot_checksum(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Builds a snapshot blob: header, then tagged sections, then the
/// checksum trailer on [`finish`](SnapshotWriter::finish).
#[derive(Debug)]
pub struct SnapshotWriter {
    buf: Vec<u8>,
}

impl Default for SnapshotWriter {
    fn default() -> SnapshotWriter {
        SnapshotWriter::new()
    }
}

impl SnapshotWriter {
    /// Starts a blob: magic + current format version.
    pub fn new() -> SnapshotWriter {
        let mut buf = Vec::with_capacity(256);
        buf.extend_from_slice(&SNAPSHOT_MAGIC);
        buf.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        SnapshotWriter { buf }
    }

    /// Appends one section: `fill` writes the payload, the length frame
    /// is patched in afterwards.
    pub fn section(&mut self, tag: [u8; 4], fill: impl FnOnce(&mut SectionWriter)) {
        self.buf.extend_from_slice(&tag);
        let len_at = self.buf.len();
        self.buf.extend_from_slice(&0u64.to_le_bytes());
        let start = self.buf.len();
        let mut w = SectionWriter { buf: &mut self.buf };
        fill(&mut w);
        let len = (self.buf.len() - start) as u64;
        self.buf[len_at..len_at + 8].copy_from_slice(&len.to_le_bytes());
    }

    /// Seals the blob with its checksum trailer and returns the bytes.
    pub fn finish(mut self) -> Vec<u8> {
        let sum = snapshot_checksum(&self.buf);
        self.buf.extend_from_slice(&sum.to_le_bytes());
        self.buf
    }
}

/// Appends primitive values to one section's payload. All integers are
/// little-endian; `f64` goes through [`f64::to_bits`].
#[derive(Debug)]
pub struct SectionWriter<'a> {
    buf: &'a mut Vec<u8>,
}

impl SectionWriter<'_> {
    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its raw IEEE-754 bits (bit-exact round trip).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends raw bytes (the caller frames the length itself).
    pub fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }
}

/// A parsed snapshot blob: header and checksum validated, sections
/// indexed by tag.
#[derive(Debug)]
pub struct SnapshotReader<'a> {
    sections: Vec<([u8; 4], &'a [u8])>,
}

impl<'a> SnapshotReader<'a> {
    /// Parses and validates a blob: magic, version, checksum and section
    /// framing. Never panics on arbitrary input.
    ///
    /// # Errors
    ///
    /// Any [`SnapshotError`] variant except `MissingSection`.
    pub fn parse(bytes: &'a [u8]) -> Result<SnapshotReader<'a>, SnapshotError> {
        if bytes.len() < 4 {
            return Err(SnapshotError::Truncated { what: "magic" });
        }
        if bytes[..4] != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        if bytes.len() < 8 {
            return Err(SnapshotError::Truncated { what: "version" });
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::VersionMismatch {
                found: version,
                expected: SNAPSHOT_VERSION,
            });
        }
        if bytes.len() < 16 {
            return Err(SnapshotError::Truncated { what: "checksum" });
        }
        let body = &bytes[..bytes.len() - 8];
        let stored = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().expect("8 bytes"));
        if snapshot_checksum(body) != stored {
            return Err(SnapshotError::Corrupt {
                what: "checksum mismatch",
            });
        }
        let mut sections = Vec::new();
        let mut at = 8;
        while at < body.len() {
            if body.len() - at < 12 {
                return Err(SnapshotError::Truncated {
                    what: "section header",
                });
            }
            let tag: [u8; 4] = body[at..at + 4].try_into().expect("4 bytes");
            let len = u64::from_le_bytes(body[at + 4..at + 12].try_into().expect("8 bytes"));
            at += 12;
            let len = usize::try_from(len).map_err(|_| SnapshotError::Corrupt {
                what: "section length overflows",
            })?;
            if body.len() - at < len {
                return Err(SnapshotError::Truncated {
                    what: "section payload",
                });
            }
            sections.push((tag, &body[at..at + len]));
            at += len;
        }
        Ok(SnapshotReader { sections })
    }

    /// A cursor over the payload of the section tagged `tag`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::MissingSection`] if the blob has no such section.
    pub fn section(&self, tag: [u8; 4]) -> Result<SectionReader<'a>, SnapshotError> {
        self.sections
            .iter()
            .find(|(t, _)| *t == tag)
            .map(|&(_, payload)| SectionReader {
                buf: payload,
                at: 0,
            })
            .ok_or(SnapshotError::MissingSection { tag })
    }
}

/// Sequential reader over one section's payload; every getter fails with
/// [`SnapshotError::Truncated`] instead of panicking when the payload
/// runs out.
#[derive(Debug)]
pub struct SectionReader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> SectionReader<'a> {
    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], SnapshotError> {
        if self.buf.len() - self.at < n {
            return Err(SnapshotError::Truncated { what });
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`].
    pub fn u8(&mut self, what: &'static str) -> Result<u8, SnapshotError> {
        Ok(self.take(1, what)?[0])
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`].
    pub fn u32(&mut self, what: &'static str) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(
            self.take(4, what)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`].
    pub fn u64(&mut self, what: &'static str) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(
            self.take(8, what)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads an `f64` from its raw IEEE-754 bits.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`].
    pub fn f64(&mut self, what: &'static str) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    /// Reads `n` raw bytes.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`].
    pub fn bytes(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], SnapshotError> {
        self.take(n, what)
    }

    /// Bytes left unread in this section.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.at
    }
}

/// Renders bytes as lowercase hex (for embedding snapshots in JSON
/// crash reports).
pub fn to_hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        use std::fmt::Write as _;
        let _ = write!(s, "{b:02x}");
    }
    s
}

/// Parses the hex produced by [`to_hex`].
///
/// # Errors
///
/// [`SnapshotError::Corrupt`] on odd length or non-hex characters.
pub fn from_hex(s: &str) -> Result<Vec<u8>, SnapshotError> {
    if !s.len().is_multiple_of(2) {
        return Err(SnapshotError::Corrupt {
            what: "odd-length hex",
        });
    }
    let digit = |c: u8| -> Result<u8, SnapshotError> {
        match c {
            b'0'..=b'9' => Ok(c - b'0'),
            b'a'..=b'f' => Ok(c - b'a' + 10),
            b'A'..=b'F' => Ok(c - b'A' + 10),
            _ => Err(SnapshotError::Corrupt {
                what: "non-hex character",
            }),
        }
    };
    let b = s.as_bytes();
    let mut out = Vec::with_capacity(s.len() / 2);
    for pair in b.chunks_exact(2) {
        out.push((digit(pair[0])? << 4) | digit(pair[1])?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob() -> Vec<u8> {
        let mut w = SnapshotWriter::new();
        w.section(*b"AAAA", |s| {
            s.u8(7);
            s.u32(0xdead_beef);
            s.u64(u64::MAX - 1);
            s.f64(-0.125);
        });
        w.section(*b"BBBB", |s| s.bytes(&[1, 2, 3]));
        w.finish()
    }

    #[test]
    fn round_trips_sections_and_primitives() {
        let bytes = blob();
        let r = SnapshotReader::parse(&bytes).unwrap();
        let mut a = r.section(*b"AAAA").unwrap();
        assert_eq!(a.u8("x").unwrap(), 7);
        assert_eq!(a.u32("x").unwrap(), 0xdead_beef);
        assert_eq!(a.u64("x").unwrap(), u64::MAX - 1);
        assert_eq!(a.f64("x").unwrap().to_bits(), (-0.125f64).to_bits());
        assert_eq!(a.remaining(), 0);
        let mut b = r.section(*b"BBBB").unwrap();
        assert_eq!(b.bytes(3, "x").unwrap(), &[1, 2, 3]);
        assert_eq!(
            r.section(*b"CCCC").unwrap_err(),
            SnapshotError::MissingSection { tag: *b"CCCC" }
        );
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let bytes = blob();
        for n in 0..bytes.len() {
            let err = SnapshotReader::parse(&bytes[..n]).unwrap_err();
            assert!(
                matches!(
                    err,
                    SnapshotError::Truncated { .. }
                        | SnapshotError::BadMagic
                        | SnapshotError::Corrupt { .. }
                ),
                "prefix of {n} bytes: {err}"
            );
        }
    }

    #[test]
    fn bit_flips_fail_the_checksum() {
        let good = blob();
        for at in [0, 5, 12, 20] {
            let mut bad = good.clone();
            bad[at] ^= 0x40;
            let err = SnapshotReader::parse(&bad).unwrap_err();
            assert!(
                matches!(
                    err,
                    SnapshotError::Corrupt { .. }
                        | SnapshotError::BadMagic
                        | SnapshotError::VersionMismatch { .. }
                ),
                "flip at {at}: {err}"
            );
        }
    }

    #[test]
    fn future_versions_are_rejected() {
        let mut bytes = blob();
        bytes[4..8].copy_from_slice(&(SNAPSHOT_VERSION + 1).to_le_bytes());
        // Re-seal so the version check (not the checksum) is what trips.
        let len = bytes.len();
        let sum = snapshot_checksum(&bytes[..len - 8]);
        bytes[len - 8..].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(
            SnapshotReader::parse(&bytes).unwrap_err(),
            SnapshotError::VersionMismatch {
                found: SNAPSHOT_VERSION + 1,
                expected: SNAPSHOT_VERSION
            }
        );
    }

    #[test]
    fn hex_round_trips() {
        let bytes = blob();
        assert_eq!(from_hex(&to_hex(&bytes)).unwrap(), bytes);
        assert!(from_hex("abc").is_err());
        assert!(from_hex("zz").is_err());
        assert_eq!(from_hex("").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn section_reads_past_the_end_are_truncated_errors() {
        let bytes = blob();
        let r = SnapshotReader::parse(&bytes).unwrap();
        let mut b = r.section(*b"BBBB").unwrap();
        assert!(matches!(
            b.u64("past the end"),
            Err(SnapshotError::Truncated { .. })
        ));
    }
}
