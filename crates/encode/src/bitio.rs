//! LSB-first bit-level writer and reader used by the VLIW instruction
//! compression.

/// Writes bit fields LSB-first into a growing byte buffer.
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Number of valid bits in the buffer.
    bit_len: usize,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> BitWriter {
        BitWriter::default()
    }

    /// Appends the low `width` bits of `value` (LSB first).
    ///
    /// # Panics
    ///
    /// Panics if `width > 32`, or if `value` has bits set above `width`.
    pub fn put(&mut self, value: u32, width: usize) {
        assert!(width <= 32, "field width {width} too large");
        assert!(
            width == 32 || value < (1u32 << width),
            "value {value:#x} does not fit in {width} bits"
        );
        for i in 0..width {
            let bit = (value >> i) & 1;
            let byte_idx = self.bit_len / 8;
            if byte_idx == self.bytes.len() {
                self.bytes.push(0);
            }
            self.bytes[byte_idx] |= (bit as u8) << (self.bit_len % 8);
            self.bit_len += 1;
        }
    }

    /// Pads with zero bits up to the next byte boundary.
    pub fn align_byte(&mut self) {
        while !self.bit_len.is_multiple_of(8) {
            self.put(0, 1);
        }
    }

    /// Number of bits written so far.
    pub fn bit_len(&self) -> usize {
        self.bit_len
    }

    /// Consumes the writer and returns the byte buffer (zero-padded to a
    /// whole number of bytes).
    pub fn into_bytes(mut self) -> Vec<u8> {
        self.align_byte();
        self.bytes
    }
}

/// Reads bit fields LSB-first from a byte slice.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `bytes` starting at bit 0.
    pub fn new(bytes: &'a [u8]) -> BitReader<'a> {
        BitReader { bytes, pos: 0 }
    }

    /// Creates a reader positioned at a byte offset.
    pub fn at_byte(bytes: &'a [u8], byte_offset: usize) -> BitReader<'a> {
        BitReader {
            bytes,
            pos: byte_offset * 8,
        }
    }

    /// Reads `width` bits (LSB first).
    ///
    /// Reads past the end of the buffer yield zero bits (and still
    /// advance the position), so the reader is total: callers that need
    /// to treat truncation as an error check [`remaining`](Self::remaining)
    /// first, as the program decoder does.
    ///
    /// # Panics
    ///
    /// Panics if `width > 32` (a caller bug, not an input property).
    pub fn get(&mut self, width: usize) -> u32 {
        assert!(width <= 32);
        let mut v = 0u32;
        for i in 0..width {
            let bit = match self.bytes.get(self.pos / 8) {
                Some(byte) => (byte >> (self.pos % 8)) & 1,
                None => 0,
            };
            v |= u32::from(bit) << i;
            self.pos += 1;
        }
        v
    }

    /// Skips to the next byte boundary.
    pub fn align_byte(&mut self) {
        self.pos = self.pos.div_ceil(8) * 8;
    }

    /// Current position in bits.
    pub fn bit_pos(&self) -> usize {
        self.pos
    }

    /// Bits remaining in the buffer.
    pub fn remaining(&self) -> usize {
        (self.bytes.len() * 8).saturating_sub(self.pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_mixed_widths() {
        let mut w = BitWriter::new();
        w.put(0b101, 3);
        w.put(0x3ff, 10);
        w.put(0, 1);
        w.put(0xdead_beef, 32);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.get(3), 0b101);
        assert_eq!(r.get(10), 0x3ff);
        assert_eq!(r.get(1), 0);
        assert_eq!(r.get(32), 0xdead_beef);
    }

    #[test]
    fn align_pads_with_zeros() {
        let mut w = BitWriter::new();
        w.put(1, 1);
        w.align_byte();
        assert_eq!(w.bit_len(), 8);
        w.put(0xab, 8);
        let bytes = w.into_bytes();
        assert_eq!(bytes, vec![0x01, 0xab]);
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.get(1), 1);
        r.align_byte();
        assert_eq!(r.get(8), 0xab);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_value_panics() {
        let mut w = BitWriter::new();
        w.put(8, 3);
    }

    #[test]
    fn empty_writer_produces_no_bytes() {
        assert!(BitWriter::new().into_bytes().is_empty());
    }
}
