//! Whole-program encoding: template chaining, jump-target handling and
//! byte layout.
//!
//! Every VLIW instruction starts with a 10-bit template field that
//! specifies the compression of the *next* VLIW instruction, making the
//! sizes available one cycle before the operations themselves (paper,
//! §2.1). Jump-target instructions are not compressed (all operation
//! fields use the maximum 42-bit format) and the preceding instruction
//! carries no template for them; instead a target instruction starts with
//! its own 10-bit template marking which slots are occupied.
//!
//! With this layout the paper's size examples hold: an empty VLIW
//! instruction occupies 2 bytes (`11:11:11:11:11` template only) and a
//! full five-operation instruction with 42-bit fields occupies 28 bytes
//! (10 + 5 x 42 = 220 bits).

use crate::bitio::{BitReader, BitWriter};
use crate::format::{
    decode_continuation, decode_field, encode_continuation, encode_field, preferred_code, SlotCode,
};
use crate::EncodeError;
use tm3270_isa::{Instr, Program, Slot, NUM_SLOTS};

/// The binary image of an encoded program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedProgram {
    /// The instruction bytes.
    pub bytes: Vec<u8>,
    /// Byte offset of each VLIW instruction.
    pub offsets: Vec<u32>,
    /// Whether each instruction is a jump target (stored uncompressed).
    pub targets: Vec<bool>,
}

impl EncodedProgram {
    /// Size in bytes of instruction `i`.
    pub fn instr_size(&self, i: usize) -> u32 {
        let end = self
            .offsets
            .get(i + 1)
            .copied()
            .unwrap_or(self.bytes.len() as u32);
        end - self.offsets[i]
    }

    /// Code-size statistics for the image.
    pub fn stats(&self) -> CodeStats {
        CodeStats {
            instr_count: self.offsets.len(),
            byte_size: self.bytes.len(),
            max_instr_bytes: (0..self.offsets.len())
                .map(|i| self.instr_size(i))
                .max()
                .unwrap_or(0),
        }
    }
}

/// Code-size statistics produced by [`EncodedProgram::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodeStats {
    /// Number of VLIW instructions.
    pub instr_count: usize,
    /// Total image size in bytes.
    pub byte_size: usize,
    /// Largest single instruction in bytes.
    pub max_instr_bytes: u32,
}

impl CodeStats {
    /// Average bytes per VLIW instruction.
    pub fn bytes_per_instr(&self) -> f64 {
        if self.instr_count == 0 {
            0.0
        } else {
            self.byte_size as f64 / self.instr_count as f64
        }
    }

    /// Size of the same program without compression (every instruction
    /// with a full template and five 42-bit fields: 28 bytes).
    pub fn uncompressed_size(&self) -> usize {
        self.instr_count * 28
    }

    /// Compression ratio relative to the uncompressed layout
    /// (smaller is better).
    pub fn compression_ratio(&self) -> f64 {
        if self.instr_count == 0 {
            return 1.0;
        }
        self.byte_size as f64 / self.uncompressed_size() as f64
    }
}

/// One superblock: a maximal straight-line run of VLIW instructions
/// `[head, end)` between jump-target boundaries.
///
/// Heads are exactly the instructions a jump can land on — index 0 plus
/// every entry of [`Program::jump_targets`] — mirroring the encoding
/// rule that target instructions are stored uncompressed (they carry
/// their own template). Control can *leave* a block anywhere (a taken
/// jump's delay slots may even straddle the boundary into the next
/// block by fall-through), but it can only *enter* at a head, which is
/// what makes per-block precomputation sound: every non-head
/// instruction is always reached from its in-block predecessor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockSpan {
    /// Index of the first VLIW instruction of the block (a jump target,
    /// or instruction 0).
    pub head: usize,
    /// One past the last instruction of the block (= the next block's
    /// head, or the program length for the final block).
    pub end: usize,
}

impl BlockSpan {
    /// Number of VLIW instructions in the block.
    pub fn len(&self) -> usize {
        self.end - self.head
    }

    /// Whether the span is empty (never true for discovered blocks).
    pub fn is_empty(&self) -> bool {
        self.end <= self.head
    }
}

/// Partitions `program` into superblocks: straight-line instruction
/// runs cut at every jump target (see [`BlockSpan`]).
///
/// The returned spans are sorted, non-empty, non-overlapping and cover
/// `0..program.instrs.len()` exactly; every jump target (and index 0)
/// is the head of exactly one span. Out-of-range or duplicate entries
/// in `jump_targets` are ignored, matching [`encode_program`]'s
/// validation (which rejects out-of-range targets outright).
pub fn superblocks(program: &tm3270_isa::Program) -> Vec<BlockSpan> {
    let n = program.instrs.len();
    if n == 0 {
        return Vec::new();
    }
    let mut heads: Vec<usize> = program
        .jump_targets
        .iter()
        .copied()
        .filter(|&t| t < n)
        .chain(std::iter::once(0))
        .collect();
    heads.sort_unstable();
    heads.dedup();
    heads
        .iter()
        .enumerate()
        .map(|(i, &head)| BlockSpan {
            head,
            end: heads.get(i + 1).copied().unwrap_or(n),
        })
        .collect()
}

/// Computes the per-slot compression codes for one instruction.
fn slot_codes(instr: &Instr, uncompressed: bool) -> Result<[SlotCode; NUM_SLOTS], EncodeError> {
    let mut codes = [SlotCode::Unused; NUM_SLOTS];
    for (i, slot) in instr.slots.iter().enumerate() {
        match slot {
            Slot::Empty => {}
            Slot::Single(op) => {
                codes[i] = if uncompressed {
                    SlotCode::S42
                } else {
                    preferred_code(op)?
                };
            }
            Slot::SuperFirst(op) => {
                let c = preferred_code(op)?;
                debug_assert_eq!(c, SlotCode::S42);
                codes[i] = c;
            }
            Slot::SuperSecond => codes[i] = SlotCode::S42,
        }
    }
    Ok(codes)
}

fn write_template(w: &mut BitWriter, codes: &[SlotCode; NUM_SLOTS]) {
    // Slot 1 (index 0) occupies the least-significant 2 bits.
    for code in codes {
        w.put(code.bits(), 2);
    }
}

fn read_template(r: &mut BitReader<'_>) -> [SlotCode; NUM_SLOTS] {
    let mut codes = [SlotCode::Unused; NUM_SLOTS];
    for code in &mut codes {
        *code = SlotCode::from_bits(r.get(2));
    }
    codes
}

/// Encodes a program into its compressed binary image.
///
/// # Errors
///
/// Returns an error if an operation's immediate exceeds the encodable
/// range (assembler bug) or if a jump target index is out of bounds.
pub fn encode_program(program: &Program) -> Result<EncodedProgram, EncodeError> {
    let n = program.instrs.len();
    let mut targets = vec![false; n];
    if n > 0 {
        targets[0] = true;
    }
    for &t in &program.jump_targets {
        if t >= n {
            return Err(EncodeError::BadTarget { index: t });
        }
        targets[t] = true;
    }

    let mut w = BitWriter::new();
    let mut offsets = Vec::with_capacity(n);
    for (i, instr) in program.instrs.iter().enumerate() {
        debug_assert_eq!(w.bit_len() % 8, 0);
        offsets.push((w.bit_len() / 8) as u32);
        let own = slot_codes(instr, targets[i])?;
        if targets[i] {
            write_template(&mut w, &own);
        }
        if i + 1 < n && !targets[i + 1] {
            let next = slot_codes(&program.instrs[i + 1], false)?;
            write_template(&mut w, &next);
        }
        // Operation fields, slot 1 first.
        let mut s = 0;
        while s < NUM_SLOTS {
            match &instr.slots[s] {
                Slot::Empty => s += 1,
                Slot::Single(op) => {
                    encode_field(&mut w, op, own[s]);
                    s += 1;
                }
                Slot::SuperFirst(op) => {
                    encode_field(&mut w, op, SlotCode::S42);
                    encode_continuation(&mut w, op);
                    s += 2;
                }
                Slot::SuperSecond => unreachable!("continuation without anchor"),
            }
        }
        w.align_byte();
    }
    Ok(EncodedProgram {
        bytes: w.into_bytes(),
        offsets,
        targets,
    })
}

/// A decode failure located at a specific VLIW instruction.
///
/// Produced by [`decode_program_detailed`] so a loader (or the pipeline's
/// crash reporter) can point at the instruction index where a corrupted
/// image first became undecodable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeFault {
    /// Index of the VLIW instruction at which decoding failed.
    pub instr: usize,
    /// The underlying decode error.
    pub cause: EncodeError,
}

impl std::fmt::Display for DecodeFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "instruction {}: {}", self.instr, self.cause)
    }
}

impl std::error::Error for DecodeFault {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.cause)
    }
}

/// Decodes a binary image back into a [`Program`].
///
/// The jump-target set is taken from the image metadata (a loader knows
/// it, just as the hardware learns targets from the jumps themselves).
///
/// # Errors
///
/// Returns [`EncodeError::Corrupt`], [`EncodeError::InvalidOpcode`] or
/// [`EncodeError::RegisterOutOfRange`] if the byte stream is
/// inconsistent. Decoding never panics, whatever the image contents.
pub fn decode_program(image: &EncodedProgram) -> Result<Program, EncodeError> {
    decode_program_detailed(image).map_err(|f| f.cause)
}

/// Like [`decode_program`], but failures carry the index of the VLIW
/// instruction at which the image first became undecodable.
pub fn decode_program_detailed(image: &EncodedProgram) -> Result<Program, DecodeFault> {
    let n = image.targets.len();
    let at = |i: usize, cause: EncodeError| DecodeFault { instr: i, cause };
    if image.offsets.len() != n {
        return Err(at(0, EncodeError::Corrupt("offset table length mismatch")));
    }
    let mut instrs = Vec::with_capacity(n);
    let mut r = BitReader::new(&image.bytes);
    let mut next_codes: Option<[SlotCode; NUM_SLOTS]> = None;
    for i in 0..n {
        r.align_byte();
        if r.bit_pos() / 8 != image.offsets[i] as usize {
            return Err(at(i, EncodeError::Corrupt("instruction offset mismatch")));
        }
        let own = if image.targets[i] {
            if r.remaining() < 10 {
                return Err(at(
                    i,
                    EncodeError::Corrupt("image truncated at own template"),
                ));
            }
            read_template(&mut r)
        } else {
            match next_codes.take() {
                Some(codes) => codes,
                None => {
                    return Err(at(
                        i,
                        EncodeError::Corrupt("missing template for instruction"),
                    ))
                }
            }
        };
        if i + 1 < n && !image.targets[i + 1] {
            if r.remaining() < 10 {
                return Err(at(
                    i,
                    EncodeError::Corrupt("image truncated at next template"),
                ));
            }
            next_codes = Some(read_template(&mut r));
        }
        let mut instr = Instr::nop();
        let mut s = 0;
        while s < NUM_SLOTS {
            if own[s] == SlotCode::Unused {
                s += 1;
                continue;
            }
            if r.remaining() < own[s].width() {
                return Err(at(
                    i,
                    EncodeError::Corrupt("image truncated in operation field"),
                ));
            }
            let op = decode_field(&mut r, own[s]).map_err(|e| at(i, e))?;
            if op.opcode.is_two_slot() {
                if s + 1 >= NUM_SLOTS || own[s + 1] != SlotCode::S42 {
                    return Err(at(
                        i,
                        EncodeError::Corrupt("two-slot op without continuation"),
                    ));
                }
                if r.remaining() < 42 {
                    return Err(at(
                        i,
                        EncodeError::Corrupt("image truncated in continuation"),
                    ));
                }
                let full = decode_continuation(&mut r, &op).map_err(|e| at(i, e))?;
                instr.place(full, s);
                s += 2;
            } else {
                instr.place(op, s);
                s += 1;
            }
        }
        instrs.push(instr);
    }
    let jump_targets = image
        .targets
        .iter()
        .enumerate()
        .filter(|&(i, &t)| t && i != 0)
        .map(|(i, _)| i)
        .collect();
    Ok(Program {
        instrs,
        jump_targets,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm3270_isa::{Op, Opcode, Reg};

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }

    fn sample_program() -> Program {
        let mut p = Program::new();
        // Instr 0 (entry, target): two ops.
        let mut i0 = Instr::nop();
        i0.place(Op::imm(r(2), 0x1234), 0);
        i0.place(Op::rrr(Opcode::Iadd, r(4), r(2), r(3)), 2);
        p.instrs.push(i0);
        // Instr 1: empty.
        p.instrs.push(Instr::nop());
        // Instr 2: full 5 ops.
        let mut i2 = Instr::nop();
        i2.place(Op::rrr(Opcode::Iadd, r(5), r(2), r(3)), 0);
        i2.place(Op::rrr(Opcode::Isub, r(6), r(2), r(3)), 1);
        i2.place(Op::rrr(Opcode::Quadavg, r(7), r(2), r(3)), 2);
        i2.place(Op::new(Opcode::St32d, Reg::ONE, &[r(2), r(3)], &[], 0), 3);
        i2.place(Op::rri(Opcode::Ld32d, r(8), r(2), 4), 4);
        p.instrs.push(i2);
        // Instr 3: two-slot op + jump back to 0.
        let mut i3 = Instr::nop();
        i3.place(
            Op::new(
                Opcode::SuperDualimix,
                Reg::ONE,
                &[r(2), r(3), r(4), r(5)],
                &[r(10), r(11)],
                0,
            ),
            1,
        );
        i3.place(Op::new(Opcode::Jmpt, r(9), &[], &[], 0), 3);
        p.instrs.push(i3);
        // Instr 4 is a jump target.
        let mut i4 = Instr::nop();
        i4.place(Op::rrr(Opcode::Iadd, r(12), r(2), r(3)), 4);
        p.instrs.push(i4);
        p.jump_targets = vec![4];
        p
    }

    #[test]
    fn round_trip_preserves_program() {
        let p = sample_program();
        let image = encode_program(&p).unwrap();
        let decoded = decode_program(&image).unwrap();
        assert_eq!(decoded, p);
    }

    #[test]
    fn empty_instruction_is_two_bytes() {
        // Paper §2.1: an empty VLIW instruction is encoded in 2 bytes.
        let mut p = Program::new();
        let mut i0 = Instr::nop();
        i0.place(Op::rrr(Opcode::Iadd, r(4), r(2), r(3)), 0);
        p.instrs.push(i0); // target (entry): own template
        p.instrs.push(Instr::nop()); // empty, non-target
        p.instrs.push(Instr::nop()); // empty, non-target
        let image = encode_program(&p).unwrap();
        assert_eq!(image.instr_size(1), 2);
        // The last instruction has no next-template: its 10-bit (empty)
        // content came from instruction 1, so it occupies 0 bytes... but it
        // must still be addressable; it holds nothing and the image simply
        // ends.
        assert_eq!(image.instr_size(2), 0);
    }

    #[test]
    fn full_instruction_is_28_bytes() {
        // Paper §2.1: 10-bit template + 5 * 42-bit operations = 28 bytes.
        let mut p = Program::new();
        p.instrs.push(Instr::nop()); // entry target: 10-bit own + 10-bit next
        let mut full = Instr::nop();
        for s in 0..5 {
            full.place(
                Op::rrr(Opcode::Iadd, r(100), r(64), r(65)).with_guard(r(9)),
                s,
            );
        }
        p.instrs.push(full);
        p.instrs.push(Instr::nop());
        let image = encode_program(&p).unwrap();
        // Instruction 1 carries its own 5x42-bit fields plus the 10-bit
        // template of instruction 2.
        assert_eq!(image.instr_size(1), 28);
    }

    #[test]
    fn jump_target_is_uncompressed() {
        let mut p = Program::new();
        p.instrs.push(Instr::nop());
        let mut small = Instr::nop();
        small.place(Op::rrr(Opcode::Iadd, r(4), r(2), r(3)), 0);
        p.instrs.push(small.clone());
        p.instrs.push(small);
        p.jump_targets = vec![2];
        let image = encode_program(&p).unwrap();
        // Instruction 1 (compressed): 26-bit op + no next template
        // (next is a target) = 4 bytes.
        assert_eq!(image.instr_size(1), 4);
        // Instruction 2 (target): own template + 42-bit op = 7 bytes.
        assert_eq!(image.instr_size(2), 7);
        let decoded = decode_program(&image).unwrap();
        assert_eq!(decoded, p);
    }

    #[test]
    fn bad_target_rejected() {
        let mut p = Program::new();
        p.instrs.push(Instr::nop());
        p.jump_targets = vec![3];
        assert!(matches!(
            encode_program(&p),
            Err(EncodeError::BadTarget { index: 3 })
        ));
    }

    #[test]
    fn stats_report_compression() {
        let p = sample_program();
        let image = encode_program(&p).unwrap();
        let stats = image.stats();
        assert_eq!(stats.instr_count, 5);
        assert!(stats.compression_ratio() < 1.0);
        assert!(stats.bytes_per_instr() < 28.0);
        assert_eq!(stats.uncompressed_size(), 5 * 28);
    }

    #[test]
    fn offsets_are_monotonic_and_byte_aligned() {
        let p = sample_program();
        let image = encode_program(&p).unwrap();
        for w in image.offsets.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert_eq!(image.offsets[0], 0);
    }

    /// Asserts the partition invariants of [`superblocks`]: sorted,
    /// non-empty, gap-free, overlap-free cover of the whole program with
    /// every jump target on a block head.
    fn assert_partition(p: &Program) -> Vec<BlockSpan> {
        let blocks = superblocks(p);
        let n = p.instrs.len();
        if n == 0 {
            assert!(blocks.is_empty());
            return blocks;
        }
        assert_eq!(blocks[0].head, 0, "first block starts at the entry");
        assert_eq!(blocks.last().unwrap().end, n, "last block ends the program");
        for b in &blocks {
            assert!(!b.is_empty(), "empty block {b:?}");
        }
        for w in blocks.windows(2) {
            assert_eq!(w[0].end, w[1].head, "gap or overlap at {w:?}");
        }
        for &t in p.jump_targets.iter().filter(|&&t| t < n) {
            assert!(
                blocks.iter().any(|b| b.head == t),
                "jump target {t} is not a block head"
            );
        }
        assert_eq!(
            blocks.iter().map(BlockSpan::len).sum::<usize>(),
            n,
            "blocks cover every instruction exactly once"
        );
        blocks
    }

    #[test]
    fn superblocks_partition_the_sample_program() {
        let p = sample_program();
        // Targets 0 (entry) and 4: two blocks, [0,4) and [4,5).
        let blocks = assert_partition(&p);
        assert_eq!(
            blocks,
            vec![BlockSpan { head: 0, end: 4 }, BlockSpan { head: 4, end: 5 }]
        );
    }

    #[test]
    fn superblocks_handle_single_instruction_blocks() {
        // Every instruction a target: all blocks have length 1.
        let mut p = Program::new();
        for _ in 0..4 {
            p.instrs.push(Instr::nop());
        }
        p.jump_targets = vec![1, 2, 3];
        let blocks = assert_partition(&p);
        assert_eq!(blocks.len(), 4);
        assert!(blocks.iter().all(|b| b.len() == 1));
    }

    #[test]
    fn superblocks_tolerate_unsorted_duplicate_and_wild_targets() {
        // decode_program reconstructs targets sorted, but hand-built
        // programs can carry duplicates, unsorted entries, or indices
        // past the end — discovery must stay a clean partition.
        let mut p = Program::new();
        for _ in 0..6 {
            p.instrs.push(Instr::nop());
        }
        p.jump_targets = vec![4, 2, 4, 99, 2, 0];
        let blocks = assert_partition(&p);
        assert_eq!(
            blocks,
            vec![
                BlockSpan { head: 0, end: 2 },
                BlockSpan { head: 2, end: 4 },
                BlockSpan { head: 4, end: 6 },
            ]
        );
    }

    #[test]
    fn superblocks_fall_through_edges_share_a_boundary() {
        // A fall-through edge (no jump between consecutive blocks) is
        // exactly a shared head/end boundary: control rolls from one
        // block into the next at end == head.
        let mut p = Program::new();
        for _ in 0..5 {
            p.instrs.push(Instr::nop());
        }
        p.jump_targets = vec![3];
        let blocks = assert_partition(&p);
        assert_eq!(blocks[0].end, blocks[1].head);
    }

    #[test]
    fn superblocks_of_trivial_programs() {
        assert!(superblocks(&Program::new()).is_empty());
        let mut one = Program::new();
        one.instrs.push(Instr::nop());
        assert_eq!(superblocks(&one), vec![BlockSpan { head: 0, end: 1 }]);
        // No jump targets at all: the whole program is one block.
        let mut straight = Program::new();
        for _ in 0..7 {
            straight.instrs.push(Instr::nop());
        }
        assert_eq!(superblocks(&straight), vec![BlockSpan { head: 0, end: 7 }]);
    }

    #[test]
    fn superblock_heads_match_encoded_target_flags() {
        // The encoder stores exactly the block heads uncompressed: the
        // `targets` flags of the image and the discovered heads agree.
        let p = sample_program();
        let image = encode_program(&p).unwrap();
        let heads: Vec<usize> = superblocks(&p).iter().map(|b| b.head).collect();
        let flagged: Vec<usize> = image
            .targets
            .iter()
            .enumerate()
            .filter(|&(_, &t)| t)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(heads, flagged);
    }
}
