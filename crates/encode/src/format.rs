//! Bit-level operation field formats.
//!
//! A VLIW instruction's template field holds one 2-bit compression code per
//! issue slot (paper, §2.1 and Figure 1):
//!
//! | code | meaning                      |
//! |------|------------------------------|
//! | `00` | 26-bit operation field       |
//! | `01` | 34-bit operation field       |
//! | `10` | 42-bit operation field       |
//! | `11` | issue slot unused            |
//!
//! The paper fixes the sizes (26/34/42 bits, 42 maximum) but not the field
//! layouts; the layouts below are this reproduction's design:
//!
//! * **26-bit** — `opcode:7 src1:6 src2:6 dst:6 pad:1`; guard `r1`,
//!   registers below `r64`, no immediate.
//! * **34-bit** — `opcode:7 src1:7 b:7 imm:13` (signed immediate); guard
//!   `r1`; `b` is the destination when one exists, otherwise the second
//!   source (stores).
//! * **42-bit** — a 2-bit sub-format tag, then:
//!   * `00` reg: `opcode:7 guard:7 src1:7 src2:7 dst:7 pad:5`
//!   * `01` mem/imm: `opcode:7 guard:7 src1:7 b:7 imm:12` (signed)
//!   * `10` jump: `opcode:7 guard:7 target:24 pad:2`
//!   * `11` long immediate: `opcode:7 dst:7 imm:26` (signed; `iimm` only)
//!
//! Two-slot operations use two 42-bit fields: the anchor field (reg tag,
//! carrying guard, `src1`, `src2` and `dst1`) and a continuation field in
//! the next slot (`src3:7 src4:7 dst2:7 pad:21`, no tag — the decoder
//! knows the previous slot held a two-slot anchor).

use crate::bitio::{BitReader, BitWriter};
use crate::EncodeError;
use tm3270_isa::{Op, Opcode, Reg};

/// A per-slot compression code from the 10-bit template field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotCode {
    /// 26-bit operation field.
    S26,
    /// 34-bit operation field.
    S34,
    /// 42-bit operation field.
    S42,
    /// Unused issue slot.
    Unused,
}

impl SlotCode {
    /// The 2-bit template encoding of this code.
    pub fn bits(self) -> u32 {
        match self {
            SlotCode::S26 => 0b00,
            SlotCode::S34 => 0b01,
            SlotCode::S42 => 0b10,
            SlotCode::Unused => 0b11,
        }
    }

    /// Decodes a 2-bit template code.
    pub fn from_bits(bits: u32) -> SlotCode {
        match bits & 3 {
            0b00 => SlotCode::S26,
            0b01 => SlotCode::S34,
            0b10 => SlotCode::S42,
            _ => SlotCode::Unused,
        }
    }

    /// The operation field width in bits (0 for an unused slot).
    pub fn width(self) -> usize {
        match self {
            SlotCode::S26 => 26,
            SlotCode::S34 => 34,
            SlotCode::S42 => 42,
            SlotCode::Unused => 0,
        }
    }
}

fn fits_signed(v: i32, bits: u32) -> bool {
    let lo = -(1i64 << (bits - 1));
    let hi = (1i64 << (bits - 1)) - 1;
    i64::from(v) >= lo && i64::from(v) <= hi
}

/// Picks the smallest field format that can represent `op`.
///
/// # Errors
///
/// Returns [`EncodeError::ImmOutOfRange`] if the immediate does not fit
/// any format (this indicates an assembler bug).
pub fn preferred_code(op: &Op) -> Result<SlotCode, EncodeError> {
    let sig = op.opcode.signature();
    if op.opcode.is_two_slot() {
        return Ok(SlotCode::S42);
    }
    let guard_one = op.guard == Reg::ONE;
    if !sig.imm {
        if guard_one
            && op.sources().iter().all(|r| r.index() < 64)
            && op.dests().iter().all(|r| r.index() < 64)
        {
            return Ok(SlotCode::S26);
        }
        return Ok(SlotCode::S42);
    }
    // Immediate-carrying operations.
    if op.opcode == Opcode::Iimm {
        if guard_one && fits_signed(op.imm, 13) {
            return Ok(SlotCode::S34);
        }
        if fits_signed(op.imm, 26) {
            return Ok(SlotCode::S42);
        }
        return Err(EncodeError::ImmOutOfRange {
            mnemonic: op.opcode.mnemonic(),
            imm: op.imm,
        });
    }
    if op.opcode.is_jump() {
        if op.imm >= 0 && op.imm < (1 << 24) {
            return Ok(SlotCode::S42);
        }
        return Err(EncodeError::ImmOutOfRange {
            mnemonic: op.opcode.mnemonic(),
            imm: op.imm,
        });
    }
    if guard_one && fits_signed(op.imm, 13) {
        return Ok(SlotCode::S34);
    }
    if fits_signed(op.imm, 12) {
        return Ok(SlotCode::S42);
    }
    Err(EncodeError::ImmOutOfRange {
        mnemonic: op.opcode.mnemonic(),
        imm: op.imm,
    })
}

fn reg_bits(r: Reg, width: usize) -> u32 {
    let v = r.index() as u32;
    debug_assert!(v < (1 << width));
    v
}

/// Encodes `op` into `w` using field format `code`.
///
/// # Panics
///
/// Panics if `code` cannot represent `op`; call [`preferred_code`] first.
pub fn encode_field(w: &mut BitWriter, op: &Op, code: SlotCode) {
    let sig = op.opcode.signature();
    let opc = u32::from(op.opcode.code());
    let src = |i: usize| -> Reg {
        if (i) < sig.srcs as usize {
            op.srcs[i]
        } else {
            Reg::ZERO
        }
    };
    let dst0 = if sig.dsts >= 1 { op.dsts[0] } else { Reg::ZERO };
    match code {
        SlotCode::S26 => {
            w.put(opc, 7);
            w.put(reg_bits(src(0), 6), 6);
            w.put(reg_bits(src(1), 6), 6);
            w.put(reg_bits(dst0, 6), 6);
            w.put(0, 1);
        }
        SlotCode::S34 => {
            let b = if sig.dsts >= 1 { dst0 } else { src(1) };
            w.put(opc, 7);
            w.put(reg_bits(src(0), 7), 7);
            w.put(reg_bits(b, 7), 7);
            w.put(op.imm as u32 & 0x1fff, 13);
        }
        SlotCode::S42 => {
            if op.opcode == Opcode::Iimm {
                w.put(0b11, 2);
                w.put(opc, 7);
                w.put(reg_bits(dst0, 7), 7);
                w.put(op.imm as u32 & 0x3ff_ffff, 26);
            } else if op.opcode.is_jump() && sig.imm {
                w.put(0b10, 2);
                w.put(opc, 7);
                w.put(reg_bits(op.guard, 7), 7);
                w.put(op.imm as u32 & 0xff_ffff, 24);
                w.put(0, 2);
            } else if sig.imm {
                let b = if sig.dsts >= 1 { dst0 } else { src(1) };
                w.put(0b01, 2);
                w.put(opc, 7);
                w.put(reg_bits(op.guard, 7), 7);
                w.put(reg_bits(src(0), 7), 7);
                w.put(reg_bits(b, 7), 7);
                w.put(op.imm as u32 & 0xfff, 12);
            } else {
                // reg tag; also the anchor field of two-slot operations.
                w.put(0b00, 2);
                w.put(opc, 7);
                w.put(reg_bits(op.guard, 7), 7);
                w.put(reg_bits(src(0), 7), 7);
                w.put(reg_bits(src(1), 7), 7);
                w.put(reg_bits(dst0, 7), 7);
                w.put(0, 5);
            }
        }
        SlotCode::Unused => unreachable!("cannot encode into an unused slot"),
    }
}

/// Encodes the continuation field (second slot) of a two-slot operation.
pub fn encode_continuation(w: &mut BitWriter, op: &Op) {
    debug_assert!(op.opcode.is_two_slot());
    let sig = op.opcode.signature();
    let src = |i: usize| -> Reg {
        if i < sig.srcs as usize {
            op.srcs[i]
        } else {
            Reg::ZERO
        }
    };
    let dst1 = if sig.dsts >= 2 { op.dsts[1] } else { Reg::ZERO };
    w.put(reg_bits(src(2), 7), 7);
    w.put(reg_bits(src(3), 7), 7);
    w.put(reg_bits(dst1, 7), 7);
    w.put(0, 21);
}

fn sext(v: u32, bits: u32) -> i32 {
    tm3270_isa::value::sign_extend(v, bits) as i32
}

fn reg_or_err(v: u32) -> Result<Reg, EncodeError> {
    Reg::try_new(v as u8).ok_or(EncodeError::RegisterOutOfRange { index: v as u8 })
}

/// Decodes one operation field of size `code`. Returns the partially
/// reconstructed operation; for a two-slot opcode the caller must follow up
/// with [`decode_continuation`].
///
/// # Errors
///
/// Returns [`EncodeError::Corrupt`] on invalid opcode or register fields.
pub fn decode_field(r: &mut BitReader<'_>, code: SlotCode) -> Result<Op, EncodeError> {
    match code {
        SlotCode::S26 => {
            let code = r.get(7) as u16;
            let opc = Opcode::from_code(code).ok_or(EncodeError::InvalidOpcode { code })?;
            if opc.is_two_slot() {
                return Err(EncodeError::Corrupt("two-slot opcode in short format"));
            }
            let a = reg_or_err(r.get(6))?;
            let b = reg_or_err(r.get(6))?;
            let c = reg_or_err(r.get(6))?;
            r.get(1);
            build_op(opc, Reg::ONE, a, b, c, 0)
        }
        SlotCode::S34 => {
            let code = r.get(7) as u16;
            let opc = Opcode::from_code(code).ok_or(EncodeError::InvalidOpcode { code })?;
            if opc.is_two_slot() {
                return Err(EncodeError::Corrupt("two-slot opcode in short format"));
            }
            let a = reg_or_err(r.get(7))?;
            let b = reg_or_err(r.get(7))?;
            let imm = sext(r.get(13), 13);
            build_op(opc, Reg::ONE, a, b, b, imm)
        }
        SlotCode::S42 => {
            let tag = r.get(2);
            match tag {
                0b11 => {
                    let code = r.get(7) as u16;
                    let opc = Opcode::from_code(code).ok_or(EncodeError::InvalidOpcode { code })?;
                    if opc != Opcode::Iimm {
                        return Err(EncodeError::Corrupt("long-immediate tag on non-iimm"));
                    }
                    let d = reg_or_err(r.get(7))?;
                    if d.is_constant() {
                        return Err(EncodeError::Corrupt("constant-register destination"));
                    }
                    let imm = sext(r.get(26), 26);
                    Ok(Op::new(opc, Reg::ONE, &[], &[d], imm))
                }
                0b10 => {
                    let code = r.get(7) as u16;
                    let opc = Opcode::from_code(code).ok_or(EncodeError::InvalidOpcode { code })?;
                    let g = reg_or_err(r.get(7))?;
                    let target = r.get(24) as i32;
                    r.get(2);
                    if !opc.is_jump() || !opc.signature().imm {
                        return Err(EncodeError::Corrupt("jump tag on non-jump"));
                    }
                    Ok(Op::new(opc, g, &[], &[], target))
                }
                0b01 => {
                    let code = r.get(7) as u16;
                    let opc = Opcode::from_code(code).ok_or(EncodeError::InvalidOpcode { code })?;
                    if opc.is_two_slot() {
                        return Err(EncodeError::Corrupt("two-slot opcode in imm format"));
                    }
                    let g = reg_or_err(r.get(7))?;
                    let a = reg_or_err(r.get(7))?;
                    let b = reg_or_err(r.get(7))?;
                    let imm = sext(r.get(12), 12);
                    build_op(opc, g, a, b, b, imm)
                }
                _ => {
                    let code = r.get(7) as u16;
                    let opc = Opcode::from_code(code).ok_or(EncodeError::InvalidOpcode { code })?;
                    let g = reg_or_err(r.get(7))?;
                    let a = reg_or_err(r.get(7))?;
                    let b = reg_or_err(r.get(7))?;
                    let c = reg_or_err(r.get(7))?;
                    r.get(5);
                    if opc.is_two_slot() {
                        // Partially built: sources 3/4 and dst2 come from
                        // the continuation field.
                        if c.is_constant() {
                            return Err(EncodeError::Corrupt("constant-register destination"));
                        }
                        let sig = opc.signature();
                        let mut srcs = vec![a, b, Reg::ZERO, Reg::ZERO];
                        srcs.truncate(sig.srcs as usize);
                        let mut dsts = vec![c, c];
                        dsts.truncate(sig.dsts as usize);
                        return Ok(Op::new(opc, g, &srcs, &dsts, 0));
                    }
                    build_op(opc, g, a, b, c, 0)
                }
            }
        }
        SlotCode::Unused => Err(EncodeError::Corrupt("decode of unused slot")),
    }
}

/// Decodes the continuation field of a two-slot operation and completes
/// `anchor`.
///
/// # Errors
///
/// Returns [`EncodeError::Corrupt`] on out-of-range register fields.
pub fn decode_continuation(r: &mut BitReader<'_>, anchor: &Op) -> Result<Op, EncodeError> {
    let s3 = reg_or_err(r.get(7))?;
    let s4 = reg_or_err(r.get(7))?;
    let d2 = reg_or_err(r.get(7))?;
    if anchor.opcode.signature().dsts >= 2 && d2.is_constant() {
        return Err(EncodeError::Corrupt("constant-register destination"));
    }
    r.get(21);
    let sig = anchor.opcode.signature();
    let mut srcs = [anchor.srcs[0], anchor.srcs[1], s3, s4];
    let mut dsts = [anchor.dsts[0], d2];
    let srcs = &mut srcs[..sig.srcs as usize];
    let dsts = &mut dsts[..sig.dsts as usize];
    Ok(Op::new(anchor.opcode, anchor.guard, srcs, dsts, 0))
}

/// Reconstructs an operation from decoded fields according to its
/// signature. `a` is the first source; `b` is the second source or the
/// destination depending on the signature; `c` is the destination for
/// three-register forms.
fn build_op(opc: Opcode, guard: Reg, a: Reg, b: Reg, c: Reg, imm: i32) -> Result<Op, EncodeError> {
    let sig = opc.signature();
    let srcs: Vec<Reg> = match sig.srcs {
        0 => vec![],
        1 => vec![a],
        _ => vec![a, b],
    };
    let dsts: Vec<Reg> = if sig.dsts >= 1 {
        if sig.imm {
            // a=src1, b=dst layouts (34-bit / 42-bit mem-imm).
            if sig.srcs >= 2 {
                vec![c]
            } else {
                vec![b]
            }
        } else if sig.srcs >= 2 {
            vec![c]
        } else {
            // Unary reg form in 26-bit/42-bit layouts: dst is the third
            // field.
            vec![c]
        }
    } else {
        vec![]
    };
    if dsts.iter().any(|d| d.is_constant()) {
        return Err(EncodeError::Corrupt("constant-register destination"));
    }
    let imm = if sig.imm { imm } else { 0 };
    Ok(Op::new(opc, guard, &srcs, &dsts, imm))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }

    fn round_trip(op: Op) -> Op {
        let code = preferred_code(&op).expect("encodable");
        let mut w = BitWriter::new();
        encode_field(&mut w, &op, code);
        if op.opcode.is_two_slot() {
            encode_continuation(&mut w, &op);
        }
        let bytes = w.into_bytes();
        let mut rd = BitReader::new(&bytes);
        let got = decode_field(&mut rd, code).expect("decodable");
        if op.opcode.is_two_slot() {
            decode_continuation(&mut rd, &got).expect("continuation")
        } else {
            got
        }
    }

    #[test]
    fn compact_26_bit_for_plain_ops() {
        let op = Op::rrr(Opcode::Iadd, r(4), r(2), r(3));
        assert_eq!(preferred_code(&op).unwrap(), SlotCode::S26);
        assert_eq!(round_trip(op), op);
    }

    #[test]
    fn high_registers_force_42_bit() {
        let op = Op::rrr(Opcode::Iadd, r(100), r(64), r(3));
        assert_eq!(preferred_code(&op).unwrap(), SlotCode::S42);
        assert_eq!(round_trip(op), op);
    }

    #[test]
    fn guarded_ops_force_42_bit() {
        let op = Op::rrr(Opcode::Iadd, r(4), r(2), r(3)).with_guard(r(9));
        assert_eq!(preferred_code(&op).unwrap(), SlotCode::S42);
        assert_eq!(round_trip(op), op);
    }

    #[test]
    fn small_imm_uses_34_bit() {
        let op = Op::rri(Opcode::Ld32d, r(4), r(2), 100);
        assert_eq!(preferred_code(&op).unwrap(), SlotCode::S34);
        assert_eq!(round_trip(op), op);
    }

    #[test]
    fn store_round_trips() {
        let op = Op::new(Opcode::St32d, Reg::ONE, &[r(2), r(3)], &[], -8);
        assert_eq!(round_trip(op), op);
        let guarded = op.with_guard(r(7));
        assert_eq!(preferred_code(&guarded).unwrap(), SlotCode::S42);
        assert_eq!(round_trip(guarded), guarded);
    }

    #[test]
    fn iimm_formats() {
        let small = Op::imm(r(4), 1000);
        assert_eq!(preferred_code(&small).unwrap(), SlotCode::S34);
        assert_eq!(round_trip(small), small);
        let large = Op::imm(r(4), 1 << 20);
        assert_eq!(preferred_code(&large).unwrap(), SlotCode::S42);
        assert_eq!(round_trip(large), large);
        let negative = Op::imm(r(4), -(1 << 20));
        assert_eq!(round_trip(negative), negative);
        let too_large = Op::imm(r(4), 1 << 26);
        assert!(preferred_code(&too_large).is_err());
    }

    #[test]
    fn jumps_round_trip() {
        let op = Op::new(Opcode::Jmpt, r(9), &[], &[], 123_456);
        assert_eq!(preferred_code(&op).unwrap(), SlotCode::S42);
        assert_eq!(round_trip(op), op);
    }

    #[test]
    fn two_slot_round_trips() {
        let op = Op::new(
            Opcode::SuperDualimix,
            r(9),
            &[r(2), r(3), r(64), r(127)],
            &[r(10), r(11)],
            0,
        );
        assert_eq!(round_trip(op), op);
        let ld = Op::new(
            Opcode::SuperLd32r,
            Reg::ONE,
            &[r(2), r(3)],
            &[r(10), r(11)],
            0,
        );
        assert_eq!(round_trip(ld), ld);
        let cab = Op::new(
            Opcode::SuperCabacStr,
            Reg::ONE,
            &[r(2), r(3), r(4)],
            &[r(10), r(11)],
            0,
        );
        assert_eq!(round_trip(cab), cab);
    }

    #[test]
    fn unary_ops_round_trip() {
        let op = Op::rr(Opcode::Sex8, r(4), r(2));
        assert_eq!(preferred_code(&op).unwrap(), SlotCode::S26);
        assert_eq!(round_trip(op), op);
    }

    #[test]
    fn displacement_out_of_range_errors() {
        let op = Op::rri(Opcode::Ld32d, r(4), r(2), 1 << 14);
        assert!(matches!(
            preferred_code(&op),
            Err(EncodeError::ImmOutOfRange { .. })
        ));
    }
}
