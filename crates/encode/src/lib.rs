//! # tm3270-encode
//!
//! Template-based VLIW instruction compression of the TM3270
//! media-processor (paper, §2.1 and Figure 1).
//!
//! A VLIW instruction may contain up to five operations, encoded in a
//! compressed format to limit code size. Every instruction starts with a
//! 10-bit template field — five 2-bit compression sub-fields, one per
//! issue slot — that specifies the operation field sizes (26, 34 or 42
//! bits, or "slot unused") of the **next** instruction, so the decode
//! pipeline knows the layout one cycle early. Jump-target instructions are
//! stored uncompressed. An empty instruction costs 2 bytes; a full
//! five-operation instruction with maximum-size fields costs 28 bytes.
//!
//! # Examples
//!
//! ```
//! use tm3270_encode::{decode_program, encode_program};
//! use tm3270_isa::{Instr, Op, Opcode, Program, Reg};
//!
//! let mut program = Program::new();
//! let mut i = Instr::nop();
//! i.place(Op::rrr(Opcode::Iadd, Reg::new(4), Reg::new(2), Reg::new(3)), 0);
//! program.instrs.push(i);
//! program.instrs.push(Instr::nop());
//!
//! let image = encode_program(&program)?;
//! assert_eq!(decode_program(&image)?, program);
//! # Ok::<(), tm3270_encode::EncodeError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bitio;
mod format;
mod program;
pub mod snapshot;

pub use bitio::{BitReader, BitWriter};
pub use format::{preferred_code, SlotCode};
pub use program::{
    decode_program, decode_program_detailed, encode_program, superblocks, BlockSpan, CodeStats,
    DecodeFault, EncodedProgram,
};
pub use snapshot::{
    SectionReader, SectionWriter, SnapshotError, SnapshotReader, SnapshotWriter, SNAPSHOT_MAGIC,
    SNAPSHOT_VERSION,
};

use std::error::Error;
use std::fmt;

/// Errors produced by program encoding and decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// An operation's immediate exceeds the encodable range.
    ImmOutOfRange {
        /// Mnemonic of the offending operation.
        mnemonic: &'static str,
        /// The immediate value that did not fit.
        imm: i32,
    },
    /// A jump-target index is outside the program.
    BadTarget {
        /// The offending instruction index.
        index: usize,
    },
    /// An operation field names an opcode that does not exist in the
    /// instruction set (typically a corrupted image).
    InvalidOpcode {
        /// The 7-bit opcode field as read from the image.
        code: u16,
    },
    /// An operation field names a register index outside the 128-entry
    /// register file (typically a corrupted image).
    RegisterOutOfRange {
        /// The register index as read from the image.
        index: u8,
    },
    /// The binary image is inconsistent.
    Corrupt(&'static str),
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::ImmOutOfRange { mnemonic, imm } => {
                write!(f, "immediate {imm} of `{mnemonic}` is not encodable")
            }
            EncodeError::BadTarget { index } => {
                write!(f, "jump target {index} is outside the program")
            }
            EncodeError::InvalidOpcode { code } => {
                write!(f, "opcode {code:#04x} is not part of the instruction set")
            }
            EncodeError::RegisterOutOfRange { index } => {
                write!(
                    f,
                    "register index {index} exceeds the 128-entry register file"
                )
            }
            EncodeError::Corrupt(what) => write!(f, "corrupt instruction image: {what}"),
        }
    }
}

impl Error for EncodeError {}
