//! The concurrent serving front-end: a TCP listener multiplexing many
//! [`Session`]s over a bounded worker pool.
//!
//! Threading model — a `Machine` holds `Rc`-based trace plumbing and is
//! deliberately `!Send`, so sessions never migrate: session `s` lives
//! its whole life on worker `s % workers`, and only *commands* cross
//! threads (through the harness [`BoundedQueue`] inboxes). Each
//! connection gets a reader (the connection thread) and a writer
//! thread; responses travel through a bounded per-connection output
//! queue, so a slow client throttles its own producers instead of
//! buffering unboundedly.
//!
//! Fairness — a worker never parks inside one session's run. Runs
//! execute as round-robin cycle quanta ([`ServerConfig::quantum`],
//! enforced via `RunOptions` budgets by [`Session::run_to`]); between
//! quanta the worker drains its command inbox, so a freshly-arrived
//! small-budget session starts (and finishes) while a hot session's
//! multi-million-cycle run is still being sliced. Because the budget
//! check is the only interruption point, a sliced run is bit-identical
//! to an uninterrupted one.
//!
//! Shutdown — a `shutdown` request (or [`ShutdownHandle::shutdown`])
//! stops the accept loop, closes the worker inboxes (workers abort
//! in-flight runs with a typed `Shutdown` error frame and checkpoint
//! every live session through the `TM3S` snapshot container into
//! [`ServerConfig::checkpoint_dir`]), then closes the per-connection
//! queues and sockets. [`Server::serve`] returns a [`ServeReport`] and
//! the daemon exits 0.

use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::{Shutdown as NetShutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use tm3270_harness::{BoundedQueue, JobSample, SweepTelemetry};
use tm3270_obs::json;

use crate::session::{RunStatus, Session, SessionError};
use crate::wire::{self, RequestOp};

/// Commands a worker inbox can hold before routing applies
/// backpressure to connection readers.
const INBOX_CAPACITY: usize = 1024;

/// Serving parameters; start from [`ServerConfig::new`] and override
/// fluently.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads owning sessions (0 = available parallelism).
    pub workers: usize,
    /// Cycles one run slice may consume before the worker rotates to
    /// the next runnable session.
    pub quantum: u64,
    /// Kernel-registry scale factor for `load` requests.
    pub scale: u64,
    /// Per-connection output queue capacity (frames).
    pub out_queue: usize,
    /// Live sessions the server accepts before rejecting `create`.
    pub max_sessions: usize,
    /// Where graceful shutdown checkpoints live sessions
    /// (`session-<id>.tm3s`); `None` skips checkpointing.
    pub checkpoint_dir: Option<PathBuf>,
    /// Optional harness telemetry collector: each completed run is
    /// recorded as a [`JobSample`] (wall time, owning worker, quantum
    /// slices as attempts).
    pub telemetry: Option<SweepTelemetry>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig::new()
    }
}

impl ServerConfig {
    /// The default serving parameters.
    pub fn new() -> ServerConfig {
        ServerConfig {
            workers: 0,
            quantum: 200_000,
            scale: 20,
            out_queue: 64,
            max_sessions: 256,
            checkpoint_dir: None,
            telemetry: None,
        }
    }

    /// Sets the worker count (0 = available parallelism).
    pub fn workers(mut self, workers: usize) -> ServerConfig {
        self.workers = workers;
        self
    }

    /// Sets the run-slice quantum in cycles (clamped to ≥ 1).
    pub fn quantum(mut self, cycles: u64) -> ServerConfig {
        self.quantum = cycles.max(1);
        self
    }

    /// Sets the kernel-registry scale factor.
    pub fn scale(mut self, scale: u64) -> ServerConfig {
        self.scale = scale;
        self
    }

    /// Sets the per-connection output queue capacity.
    pub fn out_queue(mut self, frames: usize) -> ServerConfig {
        self.out_queue = frames;
        self
    }

    /// Sets the live-session cap.
    pub fn max_sessions(mut self, sessions: usize) -> ServerConfig {
        self.max_sessions = sessions;
        self
    }

    /// Sets the shutdown checkpoint directory.
    pub fn checkpoint_dir(mut self, dir: impl Into<PathBuf>) -> ServerConfig {
        self.checkpoint_dir = Some(dir.into());
        self
    }

    /// Attaches a telemetry collector (shared; cheap clone).
    pub fn observe(mut self, telemetry: &SweepTelemetry) -> ServerConfig {
        self.telemetry = Some(telemetry.clone());
        self
    }

    /// The worker-thread count this configuration resolves to
    /// (`workers`, or the machine's available parallelism when 0).
    pub fn worker_count(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        std::thread::available_parallelism()
            .map(usize::from)
            .unwrap_or(1)
    }
}

/// What one server lifetime did, returned by [`Server::serve`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeReport {
    /// Sessions created over the server's lifetime.
    pub sessions: u64,
    /// Live sessions checkpointed to disk at shutdown.
    pub checkpointed: usize,
}

/// A registered connection, reachable from the shutdown path.
struct ConnReg {
    out: BoundedQueue<String>,
    stream: TcpStream,
}

/// State shared between the accept loop, the connection threads, the
/// workers and [`ShutdownHandle`]s.
struct Shared {
    shutdown: AtomicBool,
    next_session: AtomicU64,
    live: AtomicUsize,
    created: AtomicU64,
    checkpointed: AtomicUsize,
    inboxes: Vec<BoundedQueue<Command>>,
    conns: Mutex<Vec<ConnReg>>,
}

impl Shared {
    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }
}

/// Requests a graceful stop of a running [`Server`] from any thread
/// (the in-process equivalent of the wire `shutdown` op).
#[derive(Clone)]
pub struct ShutdownHandle {
    shared: Arc<Shared>,
}

impl std::fmt::Debug for ShutdownHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ShutdownHandle")
    }
}

impl ShutdownHandle {
    /// Signals the server to stop accepting, checkpoint live sessions
    /// and return from [`Server::serve`].
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }
}

/// One cross-thread command routed to a session's owning worker.
enum Command {
    /// Allocate the (pre-assigned) session id.
    Create {
        sid: u64,
        req: u64,
        config: String,
        responder: Responder,
    },
    /// A per-session wire operation.
    Op {
        sid: u64,
        req: u64,
        op: RequestOp,
        responder: Responder,
    },
    /// Connection dropped: discard the session silently.
    Release { sid: u64 },
}

/// The sending half of a connection's bounded output queue.
#[derive(Clone)]
struct Responder {
    out: BoundedQueue<String>,
}

impl Responder {
    /// Blocking send: full queues throttle the producer (backpressure);
    /// a closed queue (connection gone) drops the frame.
    fn send(&self, payload: String) {
        let _ = self.out.push(payload);
    }

    /// Best-effort send for interim frames (progress events, shutdown
    /// notices): never blocks, drops on a full or closed queue.
    fn send_now(&self, payload: String) {
        let _ = self.out.try_push(payload);
    }
}

/// An in-flight quantum-sliced run.
struct Active {
    target: u64,
    stream: bool,
    req: u64,
    responder: Responder,
    started: Instant,
    slices: u32,
}

/// One worker-owned session plus its run/queue state. Commands arriving
/// while a run is active are deferred in order and applied when the run
/// completes.
struct Entry {
    session: Session,
    active: Option<Active>,
    queued: VecDeque<(u64, RequestOp, Responder)>,
}

/// The TCP serving front-end (see the module docs). Bind, then
/// [`serve`](Server::serve).
pub struct Server {
    listener: TcpListener,
    config: ServerConfig,
    shared: Arc<Shared>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.listener.local_addr().ok())
            .field("config", &self.config)
            .finish()
    }
}

impl Server {
    /// Binds the listener and sets up the worker inboxes (threads start
    /// inside [`serve`](Server::serve)).
    ///
    /// # Errors
    ///
    /// Propagates the bind error.
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let workers = config.worker_count();
        let shared = Arc::new(Shared {
            shutdown: AtomicBool::new(false),
            next_session: AtomicU64::new(1),
            live: AtomicUsize::new(0),
            created: AtomicU64::new(0),
            checkpointed: AtomicUsize::new(0),
            inboxes: (0..workers)
                .map(|_| BoundedQueue::new(INBOX_CAPACITY))
                .collect(),
            conns: Mutex::new(Vec::new()),
        });
        Ok(Server {
            listener,
            config,
            shared,
        })
    }

    /// The bound address (read the ephemeral port after binding `:0`).
    ///
    /// # Errors
    ///
    /// Propagates the socket error.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The configuration this server was bound with.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// A handle that can stop this server from another thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Runs the accept loop until shutdown; returns after every worker
    /// and connection thread has exited and live sessions are
    /// checkpointed.
    ///
    /// # Errors
    ///
    /// Propagates listener I/O errors other than the nonblocking
    /// accept's `WouldBlock`.
    pub fn serve(self) -> io::Result<ServeReport> {
        self.listener.set_nonblocking(true)?;
        let started = Instant::now();
        let config = &self.config;
        let shared = &self.shared;
        if let Some(tel) = &config.telemetry {
            tel.begin_sweep();
        }
        std::thread::scope(|scope| -> io::Result<()> {
            let workers: Vec<_> = (0..shared.inboxes.len())
                .map(|windex| scope.spawn(move || worker_loop(windex, config, shared)))
                .collect();
            while !shared.shutdown.load(Ordering::SeqCst) {
                match self.listener.accept() {
                    Ok((stream, _peer)) => {
                        scope.spawn(move || connection_loop(stream, config, shared));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) => {
                        shared.begin_shutdown();
                        for inbox in &shared.inboxes {
                            inbox.close();
                        }
                        return Err(e);
                    }
                }
            }
            // Workers first: they abort runs and checkpoint sessions.
            for inbox in &shared.inboxes {
                inbox.close();
            }
            for worker in workers {
                let _ = worker.join();
            }
            // Then the connections: closing an output queue lets its
            // writer drain pending frames (the shutdown acks) before
            // the socket closes; shutting the socket down unblocks the
            // reader. Connection threads join at scope exit.
            let conns = shared.conns.lock().expect("connection registry lock");
            for conn in conns.iter() {
                conn.out.close();
                let _ = conn.stream.shutdown(NetShutdown::Both);
            }
            Ok(())
        })?;
        if let Some(tel) = &config.telemetry {
            tel.add_wall_us(started.elapsed().as_micros() as u64);
        }
        Ok(ServeReport {
            sessions: self.shared.created.load(Ordering::SeqCst),
            checkpointed: self.shared.checkpointed.load(Ordering::SeqCst),
        })
    }
}

/// One connection: reads frames, answers `ping`/`shutdown` inline,
/// routes everything else to the owning worker, and cleans up its
/// sessions on disconnect. The paired writer thread drains the bounded
/// output queue onto the socket.
fn connection_loop(stream: TcpStream, config: &ServerConfig, shared: &Arc<Shared>) {
    // Small request/response frames: Nagle would add a delayed-ACK
    // round trip to every reply.
    let _ = stream.set_nodelay(true);
    let out = BoundedQueue::<String>::new(config.out_queue);
    let responder = Responder { out: out.clone() };
    let write_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    if let Ok(reg_stream) = stream.try_clone() {
        shared
            .conns
            .lock()
            .expect("connection registry lock")
            .push(ConnReg {
                out: out.clone(),
                stream: reg_stream,
            });
    }
    let writer = {
        let out = out.clone();
        std::thread::spawn(move || {
            let mut stream = write_stream;
            while let Some(payload) = out.pop() {
                if wire::write_frame(&mut stream, &payload).is_err() {
                    break;
                }
            }
            let _ = stream.shutdown(NetShutdown::Write);
        })
    };

    let mut stream = stream;
    let mut owned: Vec<u64> = Vec::new();
    loop {
        let payload = match wire::read_frame(&mut stream) {
            Ok(Some(payload)) => payload,
            Ok(None) => break,
            Err(e) => {
                responder.send(wire::error_json(0, None, e.kind(), &e.to_string()));
                if e.is_fatal() {
                    break;
                }
                continue;
            }
        };
        let request = match wire::parse_request(&payload) {
            Ok(request) => request,
            Err(e) => {
                responder.send(wire::error_json(0, None, e.kind(), &e.to_string()));
                if e.is_fatal() {
                    break;
                }
                continue;
            }
        };
        let id = request.id;
        match request.op {
            RequestOp::Ping => {
                responder.send(format!("{{\"id\":{id},\"ok\":true,\"pong\":true}}"));
            }
            RequestOp::Shutdown => {
                responder.send(format!("{{\"id\":{id},\"ok\":true,\"shutdown\":true}}"));
                shared.begin_shutdown();
                break;
            }
            RequestOp::Create { config: name } => {
                if shared.live.fetch_add(1, Ordering::SeqCst) >= config.max_sessions {
                    shared.live.fetch_sub(1, Ordering::SeqCst);
                    responder.send(wire::error_json(
                        id,
                        None,
                        "Capacity",
                        &format!("server is at its {}-session cap", config.max_sessions),
                    ));
                    continue;
                }
                let sid = shared.next_session.fetch_add(1, Ordering::SeqCst);
                shared.created.fetch_add(1, Ordering::SeqCst);
                owned.push(sid);
                route(
                    shared,
                    sid,
                    Command::Create {
                        sid,
                        req: id,
                        config: name,
                        responder: responder.clone(),
                    },
                    &responder,
                    id,
                );
            }
            op => {
                // Every remaining op names its session.
                let sid = op.session().unwrap_or(0);
                route(
                    shared,
                    sid,
                    Command::Op {
                        sid,
                        req: id,
                        op,
                        responder: responder.clone(),
                    },
                    &responder,
                    id,
                );
            }
        }
    }
    // Disconnect: silently discard this connection's sessions.
    for sid in owned {
        let windex = (sid as usize) % shared.inboxes.len();
        let _ = shared.inboxes[windex].push(Command::Release { sid });
    }
    out.close();
    let _ = writer.join();
}

/// Routes a command to the session's owning worker, answering with a
/// typed error when the server is shutting down.
fn route(shared: &Shared, sid: u64, command: Command, responder: &Responder, req: u64) {
    let windex = (sid as usize) % shared.inboxes.len();
    if shared.inboxes[windex].push(command).is_err() {
        responder.send(wire::error_json(
            req,
            Some(sid),
            "Shutdown",
            "server is shutting down",
        ));
    }
}

/// One worker: owns every session with `sid % workers == windex`,
/// alternating between command dispatch and round-robin run quanta.
fn worker_loop(windex: usize, config: &ServerConfig, shared: &Shared) {
    let inbox = &shared.inboxes[windex];
    let mut entries: HashMap<u64, Entry> = HashMap::new();
    // Sessions with an active run, in round-robin rotation order.
    let mut ready: VecDeque<u64> = VecDeque::new();
    loop {
        if ready.is_empty() {
            // Idle: block until a command arrives or the inbox closes.
            match inbox.pop() {
                Some(command) => dispatch(command, &mut entries, &mut ready, config, shared),
                None => break,
            }
        }
        // Drain whatever else is queued before burning a quantum, so a
        // freshly-created small session joins the rotation immediately.
        while let Some(command) = inbox.try_pop() {
            dispatch(command, &mut entries, &mut ready, config, shared);
        }
        if inbox.is_closed() && inbox.is_empty() {
            break;
        }
        if let Some(sid) = ready.pop_front() {
            run_quantum(sid, &mut entries, &mut ready, windex, config, shared);
        }
    }
    shutdown_worker(entries, config, shared);
}

/// Applies one routed command (or defers it behind an active run).
fn dispatch(
    command: Command,
    entries: &mut HashMap<u64, Entry>,
    ready: &mut VecDeque<u64>,
    config: &ServerConfig,
    shared: &Shared,
) {
    match command {
        Command::Create {
            sid,
            req,
            config: name,
            responder,
        } => match Session::create_named(&name) {
            Ok(session) => {
                let config_name = session.config().name;
                entries.insert(
                    sid,
                    Entry {
                        session,
                        active: None,
                        queued: VecDeque::new(),
                    },
                );
                responder.send(format!(
                    "{{\"id\":{req},\"ok\":true,\"session\":{sid},\"config\":{}}}",
                    json::string(config_name)
                ));
            }
            Err(e) => {
                shared.live.fetch_sub(1, Ordering::SeqCst);
                responder.send(wire::error_json(req, Some(sid), e.kind(), &e.to_string()));
            }
        },
        Command::Op {
            sid,
            req,
            op,
            responder,
        } => {
            match entries.get_mut(&sid) {
                None => {
                    responder.send(wire::error_json(
                        req,
                        Some(sid),
                        "UnknownSession",
                        &format!("session {sid} does not exist"),
                    ));
                    return;
                }
                Some(entry) if entry.active.is_some() => {
                    entry.queued.push_back((req, op, responder));
                    return;
                }
                Some(_) => {}
            }
            apply(sid, req, op, responder, entries, ready, config, shared);
        }
        Command::Release { sid } => {
            if entries.remove(&sid).is_some() {
                ready.retain(|&s| s != sid);
                shared.live.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }
}

/// Applies one per-session operation on an idle (no active run) entry.
#[allow(clippy::too_many_arguments)]
fn apply(
    sid: u64,
    req: u64,
    op: RequestOp,
    responder: Responder,
    entries: &mut HashMap<u64, Entry>,
    ready: &mut VecDeque<u64>,
    config: &ServerConfig,
    shared: &Shared,
) {
    let Some(entry) = entries.get_mut(&sid) else {
        return;
    };
    let fail = |responder: &Responder, e: &SessionError| {
        responder.send(wire::error_json(req, Some(sid), e.kind(), &e.to_string()));
    };
    match op {
        RequestOp::Load { workload, .. } => {
            match entry.session.load_workload(config.scale, &workload) {
                Ok(info) => responder.send(format!(
                    "{{\"id\":{req},\"ok\":true,\"session\":{sid},\"workload\":{},\
                     \"budget\":{},\"instrs\":{},\"checksum\":\"{:#018x}\"}}",
                    json::string(&workload),
                    info.cycle_budget,
                    info.instrs,
                    info.checksum
                )),
                Err(e) => fail(&responder, &e),
            }
        }
        RequestOp::Run { budget, stream, .. } => {
            let Some(cycle) = entry.session.cycle() else {
                fail(&responder, &SessionError::NoProgram);
                return;
            };
            if let Some(tel) = &config.telemetry {
                tel.job_claimed();
            }
            entry.active = Some(Active {
                target: cycle.saturating_add(budget),
                stream,
                req,
                responder,
                started: Instant::now(),
                slices: 0,
            });
            ready.push_back(sid);
        }
        RequestOp::Step { count, .. } => match entry.session.step(count) {
            Ok(report) => responder.send(format!(
                "{{\"id\":{req},\"ok\":true,\"session\":{sid},\"stepped\":{},\
                 \"pc\":{},\"cycle\":{},\"halted\":{}}}",
                report.stepped, report.pc, report.cycle, report.halted
            )),
            Err(e) => fail(&responder, &e),
        },
        RequestOp::Inspect { .. } => match entry.session.inspect() {
            Ok(i) => responder.send(format!(
                "{{\"id\":{req},\"ok\":true,\"session\":{sid},\"pc\":{},\"cycle\":{},\
                 \"halted\":{},\"reg_digest\":\"{:#018x}\",\"stats\":{}}}",
                i.pc,
                i.cycle,
                i.halted,
                i.reg_digest,
                wire::stats_json(&i.stats)
            )),
            Err(e) => fail(&responder, &e),
        },
        RequestOp::Reg { index, .. } => {
            let result = u32::try_from(index)
                .map_err(|_| SessionError::InvalidArg(format!("register index {index}")))
                .and_then(|i| entry.session.reg(i));
            match result {
                Ok(value) => responder.send(format!(
                    "{{\"id\":{req},\"ok\":true,\"session\":{sid},\"index\":{index},\"value\":{value}}}"
                )),
                Err(e) => fail(&responder, &e),
            }
        }
        RequestOp::Read { addr, len, .. } => {
            let result = u32::try_from(addr)
                .map_err(|_| SessionError::InvalidArg(format!("address {addr} exceeds u32")))
                .and_then(|a| entry.session.read_data(a, len as usize));
            match result {
                Ok(bytes) => responder.send(format!(
                    "{{\"id\":{req},\"ok\":true,\"session\":{sid},\"addr\":{addr},\"data\":\"{}\"}}",
                    tm3270_encode::snapshot::to_hex(&bytes)
                )),
                Err(e) => fail(&responder, &e),
            }
        }
        RequestOp::Verify { .. } => match entry.session.verify() {
            Ok(()) => responder.send(format!(
                "{{\"id\":{req},\"ok\":true,\"session\":{sid},\"verified\":true}}"
            )),
            Err(e) => fail(&responder, &e),
        },
        RequestOp::Snapshot { .. } => match entry.session.snapshot() {
            Ok(snap) => responder.send(format!(
                "{{\"id\":{req},\"ok\":true,\"session\":{sid},\"bytes\":{},\"snapshot\":\"{}\"}}",
                snap.len(),
                snap.to_hex()
            )),
            Err(e) => fail(&responder, &e),
        },
        RequestOp::Restore { hex, .. } => {
            let result = tm3270_core::Snapshot::from_hex(&hex)
                .map_err(SessionError::Snapshot)
                .and_then(|snap| entry.session.restore(&snap));
            match result {
                Ok(()) => responder.send(format!(
                    "{{\"id\":{req},\"ok\":true,\"session\":{sid},\"restored\":true,\"cycle\":{}}}",
                    entry.session.cycle().unwrap_or(0)
                )),
                Err(e) => fail(&responder, &e),
            }
        }
        RequestOp::TraceAttach {
            limit, timeline, ..
        } => match entry.session.trace_attach(limit as usize, timeline) {
            Ok(()) => responder.send(format!(
                "{{\"id\":{req},\"ok\":true,\"session\":{sid},\"tracing\":true}}"
            )),
            Err(e) => fail(&responder, &e),
        },
        RequestOp::TraceDetach { .. } => match entry.session.trace_detach() {
            Ok(doc) => responder.send(format!(
                "{{\"id\":{req},\"ok\":true,\"session\":{sid},\"trace\":{doc}}}"
            )),
            Err(e) => fail(&responder, &e),
        },
        RequestOp::Close { .. } => {
            entries.remove(&sid);
            ready.retain(|&s| s != sid);
            shared.live.fetch_sub(1, Ordering::SeqCst);
            responder.send(format!(
                "{{\"id\":{req},\"ok\":true,\"session\":{sid},\"closed\":true}}"
            ));
        }
        // Connection-level ops are answered on the connection thread
        // and never routed here.
        RequestOp::Ping | RequestOp::Create { .. } | RequestOp::Shutdown => {}
    }
}

/// Runs one quantum of `sid`'s active run, emits progress/final frames
/// and rotates or retires the session.
fn run_quantum(
    sid: u64,
    entries: &mut HashMap<u64, Entry>,
    ready: &mut VecDeque<u64>,
    windex: usize,
    config: &ServerConfig,
    shared: &Shared,
) {
    let Some(entry) = entries.get_mut(&sid) else {
        return;
    };
    let Some(active) = entry.active.as_mut() else {
        return;
    };
    active.slices += 1;
    let cycle = entry.session.cycle().unwrap_or(0);
    let target = active.target.min(cycle.saturating_add(config.quantum));
    let finished: Option<(bool, Option<&'static str>)> = match entry.session.run_to(target) {
        Ok(RunStatus::Halted(stats)) => {
            let active = entry.active.take().expect("active run");
            let cell = entry
                .session
                .workload()
                .map(|w| wire::cell_json(w, entry.session.config().name, &stats));
            let mut payload = format!(
                "{{\"id\":{},\"ok\":true,\"session\":{sid},\"halted\":true,\
                 \"slices\":{},\"stats\":{}",
                active.req,
                active.slices,
                wire::stats_json(&stats)
            );
            if let Some(cell) = cell {
                payload.push_str(",\"cell\":");
                payload.push_str(&cell);
            }
            payload.push('}');
            active.responder.send(payload);
            record_run(config, windex, sid, &active, true, None);
            Some((true, None))
        }
        Ok(RunStatus::Running { cycle, instrs }) => {
            if cycle >= active.target {
                // The requested budget ran out without a halt: not an
                // error — the client may extend with another `run`.
                let active = entry.active.take().expect("active run");
                active.responder.send(format!(
                    "{{\"id\":{},\"ok\":true,\"session\":{sid},\"halted\":false,\
                     \"cycle\":{cycle},\"instrs\":{instrs},\"slices\":{}}}",
                    active.req, active.slices
                ));
                record_run(config, windex, sid, &active, true, None);
                Some((true, None))
            } else {
                if active.stream {
                    active.responder.send_now(format!(
                        "{{\"id\":{},\"event\":\"progress\",\"session\":{sid},\
                         \"cycle\":{cycle},\"instrs\":{instrs}}}",
                        active.req
                    ));
                }
                ready.push_back(sid);
                None
            }
        }
        Err(e) => {
            let active = entry.active.take().expect("active run");
            active.responder.send(wire::error_json(
                active.req,
                Some(sid),
                e.kind(),
                &e.to_string(),
            ));
            record_run(config, windex, sid, &active, false, Some(e.kind()));
            Some((false, Some(e.kind())))
        }
    };
    if finished.is_some() {
        drain_queued(sid, entries, ready, config, shared);
    }
}

/// Records one completed run as a harness [`JobSample`].
fn record_run(
    config: &ServerConfig,
    windex: usize,
    sid: u64,
    active: &Active,
    ok: bool,
    error_kind: Option<&'static str>,
) {
    if let Some(tel) = &config.telemetry {
        tel.job_done(JobSample {
            sweep: 0,
            id: sid as usize,
            worker: windex,
            wall_us: active.started.elapsed().as_micros() as u64,
            ok,
            attempts: active.slices.max(1),
            error_kind,
        });
    }
}

/// Applies commands deferred behind a completed run, stopping when a
/// new run starts (or the session closes).
fn drain_queued(
    sid: u64,
    entries: &mut HashMap<u64, Entry>,
    ready: &mut VecDeque<u64>,
    config: &ServerConfig,
    shared: &Shared,
) {
    loop {
        let next = match entries.get_mut(&sid) {
            Some(entry) if entry.active.is_none() => entry.queued.pop_front(),
            _ => None,
        };
        let Some((req, op, responder)) = next else {
            return;
        };
        apply(sid, req, op, responder, entries, ready, config, shared);
    }
}

/// Worker shutdown: abort active runs with a typed notice and
/// checkpoint every live session through the TM3S container.
fn shutdown_worker(mut entries: HashMap<u64, Entry>, config: &ServerConfig, shared: &Shared) {
    let mut sids: Vec<u64> = entries.keys().copied().collect();
    sids.sort_unstable();
    for sid in sids {
        let Some(mut entry) = entries.remove(&sid) else {
            continue;
        };
        if let Some(active) = entry.active.take() {
            active.responder.send_now(wire::error_json(
                active.req,
                Some(sid),
                "Shutdown",
                "server is shutting down; session checkpointed",
            ));
        }
        let Some(dir) = &config.checkpoint_dir else {
            continue;
        };
        let Ok(snapshot) = entry.session.snapshot() else {
            continue; // nothing loaded — nothing to checkpoint
        };
        let path = dir.join(format!("session-{sid}.tm3s"));
        match std::fs::write(&path, snapshot.as_bytes()) {
            Ok(()) => {
                shared.checkpointed.fetch_add(1, Ordering::SeqCst);
            }
            Err(e) => eprintln!("tm3270d: checkpoint {} failed: {e}", path.display()),
        }
    }
}
