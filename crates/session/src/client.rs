//! A small blocking client for the `tm3270d` wire protocol.
//!
//! [`Client`] wraps one TCP connection: it frames requests with
//! [`wire::write_frame`], reads replies with [`wire::read_frame`], and
//! offers typed helpers for the common lifecycle
//! (`create → load → run → verify → close`). Raw access stays
//! available through [`Client::request`] for ops without a helper.
//!
//! Replies are matched to requests by the echoed `id`; interim
//! `"event"` frames (run progress) are skipped by the typed helpers,
//! so a streamed run still resolves to its final frame. Server-side
//! failures surface as [`ClientError::Server`] carrying the typed
//! error kind from the wire frame.

use std::io;
use std::net::{TcpStream, ToSocketAddrs};

use tm3270_obs::json;

use crate::wire::{self, WireError};

/// What a `load` request reported back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadReply {
    /// The kernel's self-declared cycle budget (pass to `run`).
    pub budget: u64,
    /// FNV-1a checksum of the encoded program image.
    pub checksum: u64,
    /// VLIW instructions in the program.
    pub instrs: u64,
}

/// The final frame of a `run` request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunReply {
    /// Whether the machine halted (false = budget exhausted).
    pub halted: bool,
    /// Quantum slices the server spent on this run.
    pub slices: u64,
    /// The raw final frame, for callers that want more fields (e.g.
    /// the `"cell"` suite row emitted for workload runs).
    pub payload: String,
}

/// Client-side failures: transport, server-reported, or protocol.
#[derive(Debug)]
pub enum ClientError {
    /// Framing or socket failure.
    Wire(WireError),
    /// The server answered with a typed error frame.
    Server {
        /// The machine-readable error kind (e.g. `"UnknownWorkload"`).
        kind: String,
        /// The human-readable detail string.
        detail: String,
    },
    /// The reply arrived but did not have the expected shape.
    Protocol(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Wire(e) => write!(f, "wire error: {e}"),
            ClientError::Server { kind, detail } => write!(f, "server error [{kind}]: {detail}"),
            ClientError::Protocol(what) => write!(f, "protocol error: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> ClientError {
        ClientError::Wire(e)
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Wire(WireError::Io(e.to_string()))
    }
}

/// One blocking connection to a `tm3270d` server.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    next_id: u64,
}

impl Client {
    /// Connects to a running server.
    ///
    /// # Errors
    ///
    /// Propagates the connect error.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        // The protocol is request/response with small frames; leaving
        // Nagle on costs a delayed-ACK round trip per exchange.
        stream.set_nodelay(true)?;
        Ok(Client { stream, next_id: 1 })
    }

    fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Sends one raw request body (the fields after `"id"`) and returns
    /// the matching non-event reply frame.
    ///
    /// The body is spliced into `{"id":N,<body>}`, so pass e.g.
    /// `"op":"inspect","session":3` — already JSON-escaped.
    ///
    /// # Errors
    ///
    /// [`ClientError::Wire`] on transport failure,
    /// [`ClientError::Server`] when the reply is a typed error frame.
    pub fn request(&mut self, body: &str) -> Result<String, ClientError> {
        let id = self.fresh_id();
        self.send_raw(&format!("{{\"id\":{id},{body}}}"))?;
        self.recv_final(id)
    }

    /// Writes one already-complete frame payload.
    ///
    /// # Errors
    ///
    /// [`ClientError::Wire`] on transport failure.
    pub fn send_raw(&mut self, payload: &str) -> Result<(), ClientError> {
        wire::write_frame(&mut self.stream, payload)?;
        Ok(())
    }

    /// Reads the next reply frame, whatever it is (including `"event"`
    /// frames that the typed helpers skip).
    ///
    /// # Errors
    ///
    /// [`ClientError::Wire`] on transport failure or clean EOF.
    pub fn recv_raw(&mut self) -> Result<String, ClientError> {
        match wire::read_frame(&mut self.stream)? {
            Some(payload) => Ok(payload),
            None => Err(ClientError::Wire(WireError::Io(
                "connection closed".to_string(),
            ))),
        }
    }

    /// Reads frames until the final (non-event) reply for `id`,
    /// converting error frames into [`ClientError::Server`].
    fn recv_final(&mut self, id: u64) -> Result<String, ClientError> {
        loop {
            let payload = self.recv_raw()?;
            if json::string_field(&payload, "event").is_some() {
                continue;
            }
            if json::u64_field(&payload, "id") != Some(id) {
                return Err(ClientError::Protocol("reply id does not match request"));
            }
            if let Some(kind) = json::string_field(&payload, "error") {
                let detail = json::string_field(&payload, "detail").unwrap_or_default();
                return Err(ClientError::Server { kind, detail });
            }
            return Ok(payload);
        }
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.request("\"op\":\"ping\"").map(|_| ())
    }

    /// Creates a session for a named configuration (`"a"`..`"d"`,
    /// `"tm3260"`, `"tm3270"`) and returns its id.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn create(&mut self, config: &str) -> Result<u64, ClientError> {
        let reply = self.request(&format!(
            "\"op\":\"create\",\"config\":{}",
            json::string(config)
        ))?;
        json::u64_field(&reply, "session")
            .ok_or(ClientError::Protocol("create reply without session id"))
    }

    /// Loads a registry workload into a session.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn load(&mut self, session: u64, workload: &str) -> Result<LoadReply, ClientError> {
        let reply = self.request(&format!(
            "\"op\":\"load\",\"session\":{session},\"workload\":{}",
            json::string(workload)
        ))?;
        let budget = json::u64_field(&reply, "budget")
            .ok_or(ClientError::Protocol("load reply without budget"))?;
        let checksum = json::string_field(&reply, "checksum")
            .and_then(|s| u64::from_str_radix(s.trim_start_matches("0x"), 16).ok())
            .ok_or(ClientError::Protocol("load reply without checksum"))?;
        let instrs = json::u64_field(&reply, "instrs").ok_or(ClientError::Protocol(
            "load reply without instruction count",
        ))?;
        Ok(LoadReply {
            budget,
            checksum,
            instrs,
        })
    }

    /// Runs a session for up to `budget` more cycles, blocking until
    /// the final frame (progress events are skipped).
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn run(&mut self, session: u64, budget: u64) -> Result<RunReply, ClientError> {
        let payload = self.request(&format!(
            "\"op\":\"run\",\"session\":{session},\"budget\":{budget}"
        ))?;
        let halted = payload.contains("\"halted\":true");
        let slices = json::u64_field(&payload, "slices")
            .ok_or(ClientError::Protocol("run reply without slice count"))?;
        Ok(RunReply {
            halted,
            slices,
            payload,
        })
    }

    /// Checks the loaded workload against its golden reference.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] with kind `"Verify"` on mismatch.
    pub fn verify(&mut self, session: u64) -> Result<(), ClientError> {
        self.request(&format!("\"op\":\"verify\",\"session\":{session}"))
            .map(|_| ())
    }

    /// Captures the session's full machine state as container hex.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn snapshot(&mut self, session: u64) -> Result<String, ClientError> {
        let reply = self.request(&format!("\"op\":\"snapshot\",\"session\":{session}"))?;
        json::string_field(&reply, "snapshot")
            .ok_or(ClientError::Protocol("snapshot reply without payload"))
    }

    /// Restores container hex (from [`Client::snapshot`], possibly on a
    /// different session or server) into a session.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn restore(&mut self, session: u64, hex: &str) -> Result<(), ClientError> {
        self.request(&format!(
            "\"op\":\"restore\",\"session\":{session},\"snapshot\":\"{hex}\""
        ))
        .map(|_| ())
    }

    /// Releases a session.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn close(&mut self, session: u64) -> Result<(), ClientError> {
        self.request(&format!("\"op\":\"close\",\"session\":{session}"))
            .map(|_| ())
    }

    /// Asks the server to shut down gracefully (checkpointing live
    /// sessions) and acknowledges the request.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.request("\"op\":\"shutdown\"").map(|_| ())
    }
}
