//! The versioned, length-framed request/response wire encoding.
//!
//! Every frame is a fixed 12-byte header followed by one flat JSON
//! document (parsed with the `tm3270_obs::json` scanners — the
//! workspace carries no serde):
//!
//! ```text
//! offset  size  field
//! 0       4     magic  "TM3W" (the encode crate's TM3S convention,
//!               W for wire)
//! 4       4     format version, u32 little-endian (currently 1)
//! 8       4     payload length in bytes, u32 little-endian
//! 12      len   payload: one UTF-8 flat JSON object
//! ```
//!
//! Requests carry `"op"` (the operation name), `"id"` (an opaque u64
//! the response echoes) and the operation's arguments. Responses echo
//! `"id"` and carry either `"ok":true` plus results, `"ok":false` plus
//! a typed `"error"` kind and human-readable `"detail"`, or — for
//! streamed runs — `"event":"progress"` interim frames before the
//! final response.
//!
//! Malformed input degrades into a typed [`WireError`], never a panic:
//! a truncated header or payload, a bad magic, a version from the
//! future, an oversized length, non-UTF-8 bytes, a JSON document
//! missing required fields, or an unknown operation name.

use std::io::{self, Read, Write};

use tm3270_core::RunStats;
use tm3270_obs::json;

/// Frame magic: the `TM3S` snapshot-container convention, `W` for wire.
pub const WIRE_MAGIC: [u8; 4] = *b"TM3W";

/// Current wire format version. Bump on any incompatible frame or
/// payload change; servers reject other versions with a typed error.
pub const WIRE_VERSION: u32 = 1;

/// Upper bound on one frame's payload (snapshot hex dominates; a full
/// evaluation-config snapshot is ~4.4 MB of hex).
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// Typed error of frame reading and request parsing. Never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The stream ended inside a frame.
    Truncated {
        /// Which part of the frame was cut off.
        what: &'static str,
    },
    /// The frame does not start with [`WIRE_MAGIC`].
    BadMagic,
    /// The frame's format version is not [`WIRE_VERSION`].
    VersionMismatch {
        /// The version the frame declared.
        found: u32,
    },
    /// The declared payload length exceeds [`MAX_FRAME_BYTES`].
    FrameTooLarge {
        /// The declared length.
        len: u64,
    },
    /// The payload is not UTF-8.
    NotUtf8,
    /// The payload parses but lacks a required field (or has one of the
    /// wrong type).
    Malformed {
        /// Which field or property is missing/wrong.
        what: &'static str,
    },
    /// The request's `"op"` is not a known operation.
    UnknownOp(String),
    /// An underlying I/O error (socket reset, write failure).
    Io(String),
}

impl WireError {
    /// A stable machine-readable tag (mirrors [`SessionError::kind`]).
    ///
    /// [`SessionError::kind`]: crate::SessionError::kind
    pub fn kind(&self) -> &'static str {
        match self {
            WireError::Truncated { .. } => "Truncated",
            WireError::BadMagic => "BadMagic",
            WireError::VersionMismatch { .. } => "VersionMismatch",
            WireError::FrameTooLarge { .. } => "FrameTooLarge",
            WireError::NotUtf8 => "NotUtf8",
            WireError::Malformed { .. } => "Malformed",
            WireError::UnknownOp(_) => "UnknownOp",
            WireError::Io(_) => "Io",
        }
    }

    /// Whether frame synchronization is lost — the connection cannot
    /// continue after this error (vs. a bad payload inside an intact
    /// frame, which the peer can follow with a well-formed request).
    pub fn is_fatal(&self) -> bool {
        !matches!(self, WireError::Malformed { .. } | WireError::UnknownOp(_))
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { what } => write!(f, "truncated {what}"),
            WireError::BadMagic => write!(f, "bad frame magic (want \"TM3W\")"),
            WireError::VersionMismatch { found } => {
                write!(f, "wire version {found} (this end speaks {WIRE_VERSION})")
            }
            WireError::FrameTooLarge { len } => {
                write!(
                    f,
                    "frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"
                )
            }
            WireError::NotUtf8 => write!(f, "payload is not UTF-8"),
            WireError::Malformed { what } => write!(f, "malformed request: {what}"),
            WireError::UnknownOp(op) => write!(f, "unknown op {op:?}"),
            WireError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Writes one frame (header + JSON payload).
///
/// # Errors
///
/// Propagates the writer's I/O error; rejects payloads over
/// [`MAX_FRAME_BYTES`] with `InvalidInput`.
pub fn write_frame(w: &mut impl Write, payload: &str) -> io::Result<()> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "payload exceeds MAX_FRAME_BYTES",
        ));
    }
    w.write_all(&WIRE_MAGIC)?;
    w.write_all(&WIRE_VERSION.to_le_bytes())?;
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload.as_bytes())?;
    w.flush()
}

fn read_exact_or(r: &mut impl Read, buf: &mut [u8], what: &'static str) -> Result<(), WireError> {
    r.read_exact(buf).map_err(|e| match e.kind() {
        io::ErrorKind::UnexpectedEof => WireError::Truncated { what },
        _ => WireError::Io(e.to_string()),
    })
}

/// Reads one frame's payload. Returns `Ok(None)` on a clean end of
/// stream (EOF before the first header byte).
///
/// # Errors
///
/// See [`WireError`]; all of them leave the stream unsynchronized
/// except none — a frame error here means the connection should close.
pub fn read_frame(r: &mut impl Read) -> Result<Option<String>, WireError> {
    let mut header = [0u8; 12];
    // Probe the first byte separately so a peer hanging up between
    // frames reads as a clean end of stream, not a truncated frame.
    let mut first = [0u8; 1];
    loop {
        match r.read(&mut first) {
            Ok(0) => return Ok(None),
            Ok(_) => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(WireError::Io(e.to_string())),
        }
    }
    header[0] = first[0];
    read_exact_or(r, &mut header[1..], "frame header")?;
    if header[0..4] != WIRE_MAGIC {
        return Err(WireError::BadMagic);
    }
    let version = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
    if version != WIRE_VERSION {
        return Err(WireError::VersionMismatch { found: version });
    }
    let len = u32::from_le_bytes([header[8], header[9], header[10], header[11]]) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(WireError::FrameTooLarge { len: len as u64 });
    }
    let mut payload = vec![0u8; len];
    read_exact_or(r, &mut payload, "frame payload")?;
    String::from_utf8(payload)
        .map(Some)
        .map_err(|_| WireError::NotUtf8)
}

/// One parsed request: the echoed `id` plus the operation.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Opaque request id, echoed verbatim in every response frame.
    pub id: u64,
    /// The requested operation.
    pub op: RequestOp,
}

/// The operations of wire version 1.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestOp {
    /// Liveness probe; answered on the connection thread.
    Ping,
    /// Allocate a session for a named machine configuration.
    Create {
        /// Configuration name (see [`config_named`](crate::config_named)).
        config: String,
    },
    /// Load a registry workload into a session.
    Load {
        /// Target session.
        session: u64,
        /// Workload name from the kernel registry.
        workload: String,
    },
    /// Run for up to `budget` more cycles (quantum-sliced server-side).
    Run {
        /// Target session.
        session: u64,
        /// Relative cycle budget for this run.
        budget: u64,
        /// Emit interim `progress` event frames after each quantum.
        stream: bool,
    },
    /// Execute up to `count` VLIW instructions.
    Step {
        /// Target session.
        session: u64,
        /// Instructions to execute.
        count: u64,
    },
    /// Position, liveness, register digest and statistics so far.
    Inspect {
        /// Target session.
        session: u64,
    },
    /// Read one general register.
    Reg {
        /// Target session.
        session: u64,
        /// Register index (0..128).
        index: u64,
    },
    /// Read data memory (hex-encoded in the response).
    Read {
        /// Target session.
        session: u64,
        /// Byte address.
        addr: u64,
        /// Bytes to read.
        len: u64,
    },
    /// Check the loaded workload against its golden reference.
    Verify {
        /// Target session.
        session: u64,
    },
    /// Serialize the machine state into a hex `TM3S` snapshot.
    Snapshot {
        /// Target session.
        session: u64,
    },
    /// Restore a hex `TM3S` snapshot into the session.
    Restore {
        /// Target session.
        session: u64,
        /// Snapshot container bytes, lowercase hex.
        hex: String,
    },
    /// Attach a Chrome-trace sink (and optional timeline sampler).
    TraceAttach {
        /// Target session.
        session: u64,
        /// Chrome event cap.
        limit: u64,
        /// Timeline sample interval in cycles (0 = no timeline).
        timeline: u64,
    },
    /// Detach the trace and return the Chrome JSON document.
    TraceDetach {
        /// Target session.
        session: u64,
    },
    /// Drop a session.
    Close {
        /// Target session.
        session: u64,
    },
    /// Gracefully stop the server (checkpointing live sessions).
    Shutdown,
}

impl RequestOp {
    /// The session a per-session operation targets (`None` for
    /// connection-level ops: ping, create, shutdown).
    pub fn session(&self) -> Option<u64> {
        match self {
            RequestOp::Ping | RequestOp::Create { .. } | RequestOp::Shutdown => None,
            RequestOp::Load { session, .. }
            | RequestOp::Run { session, .. }
            | RequestOp::Step { session, .. }
            | RequestOp::Inspect { session }
            | RequestOp::Reg { session, .. }
            | RequestOp::Read { session, .. }
            | RequestOp::Verify { session }
            | RequestOp::Snapshot { session }
            | RequestOp::Restore { session, .. }
            | RequestOp::TraceAttach { session, .. }
            | RequestOp::TraceDetach { session }
            | RequestOp::Close { session } => Some(*session),
        }
    }
}

fn need_u64(doc: &str, key: &'static str) -> Result<u64, WireError> {
    json::u64_field(doc, key).ok_or(WireError::Malformed { what: key })
}

fn need_str(doc: &str, key: &'static str) -> Result<String, WireError> {
    json::string_field(doc, key).ok_or(WireError::Malformed { what: key })
}

/// Parses one request payload (a flat JSON object).
///
/// # Errors
///
/// [`WireError::Malformed`] for a missing `op`/argument,
/// [`WireError::UnknownOp`] for an operation this version does not
/// know.
pub fn parse_request(payload: &str) -> Result<Request, WireError> {
    let op_name = need_str(payload, "op").map_err(|_| WireError::Malformed { what: "op" })?;
    let id = json::u64_field(payload, "id").unwrap_or(0);
    let session = || need_u64(payload, "session");
    let op = match op_name.as_str() {
        "ping" => RequestOp::Ping,
        "create" => RequestOp::Create {
            config: need_str(payload, "config")?,
        },
        "load" => RequestOp::Load {
            session: session()?,
            workload: need_str(payload, "workload")?,
        },
        "run" => RequestOp::Run {
            session: session()?,
            budget: need_u64(payload, "budget")?,
            stream: json::u64_field(payload, "stream").unwrap_or(0) != 0,
        },
        "step" => RequestOp::Step {
            session: session()?,
            count: need_u64(payload, "count")?,
        },
        "inspect" => RequestOp::Inspect {
            session: session()?,
        },
        "reg" => RequestOp::Reg {
            session: session()?,
            index: need_u64(payload, "index")?,
        },
        "read" => RequestOp::Read {
            session: session()?,
            addr: need_u64(payload, "addr")?,
            len: need_u64(payload, "len")?,
        },
        "verify" => RequestOp::Verify {
            session: session()?,
        },
        "snapshot" => RequestOp::Snapshot {
            session: session()?,
        },
        "restore" => RequestOp::Restore {
            session: session()?,
            hex: need_str(payload, "snapshot")?,
        },
        "trace_attach" => RequestOp::TraceAttach {
            session: session()?,
            limit: json::u64_field(payload, "limit").unwrap_or(100_000),
            timeline: json::u64_field(payload, "timeline").unwrap_or(0),
        },
        "trace_detach" => RequestOp::TraceDetach {
            session: session()?,
        },
        "close" => RequestOp::Close {
            session: session()?,
        },
        "shutdown" => RequestOp::Shutdown,
        _ => return Err(WireError::UnknownOp(op_name)),
    };
    Ok(Request { id, op })
}

/// Renders [`RunStats`] as the wire's flat `stats` object. Field
/// numbers are integers except `time_us` (formatted with
/// [`json::number`], like every JSON document in this workspace).
pub fn stats_json(stats: &RunStats) -> String {
    format!(
        "{{\"cycles\":{},\"instrs\":{},\"ops\":{},\"exec_ops\":{},\
         \"branches\":{},\"taken_branches\":{},\"ifetch_stall\":{},\
         \"data_stall\":{},\"dcache_misses\":{},\"dram_bytes\":{},\
         \"time_us\":{}}}",
        stats.cycles,
        stats.instrs,
        stats.ops,
        stats.exec_ops,
        stats.branches,
        stats.taken_branches,
        stats.ifetch_stall_cycles,
        stats.data_stall_cycles,
        stats.mem.dcache.misses,
        stats.mem.dram.bytes,
        json::number(stats.time_us())
    )
}

/// Renders one evaluation-suite cell — the exact row format of the
/// `repro_all --json` suite document. `tm3270-bench::suite_json` and
/// the server's run responses both emit rows through this function, so
/// a remotely-served suite byte-diffs cleanly against the serial one.
pub fn cell_json(kernel: &str, config: &str, stats: &RunStats) -> String {
    format!(
        "{{\"kernel\":{},\"config\":{},\"cycles\":{},\"instrs\":{},\
         \"ops\":{},\"ifetch_stall\":{},\"data_stall\":{},\
         \"dcache_misses\":{},\"dram_bytes\":{},\"time_us\":{}}}",
        json::string(kernel),
        json::string(config),
        stats.cycles,
        stats.instrs,
        stats.ops,
        stats.ifetch_stall_cycles,
        stats.data_stall_cycles,
        stats.mem.dcache.misses,
        stats.mem.dram.bytes,
        json::number(stats.time_us())
    )
}

/// Renders the standard error response payload.
pub fn error_json(id: u64, session: Option<u64>, kind: &str, detail: &str) -> String {
    let session = session
        .map(|s| format!(",\"session\":{s}"))
        .unwrap_or_default();
    format!(
        "{{\"id\":{id}{session},\"ok\":false,\"error\":{},\"detail\":{}}}",
        json::string(kind),
        json::string(detail)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame_bytes(payload: &str) -> Vec<u8> {
        let mut out = Vec::new();
        write_frame(&mut out, payload).unwrap();
        out
    }

    #[test]
    fn frames_round_trip() {
        let bytes = frame_bytes("{\"op\":\"ping\",\"id\":7}");
        let mut r = bytes.as_slice();
        assert_eq!(
            read_frame(&mut r).unwrap().as_deref(),
            Some("{\"op\":\"ping\",\"id\":7}")
        );
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF after frame");
    }

    #[test]
    fn truncated_frames_are_typed_errors() {
        let bytes = frame_bytes("{\"op\":\"ping\"}");
        for cut in [1, 6, 11, bytes.len() - 1] {
            let mut r = &bytes[..cut];
            let err = read_frame(&mut r).unwrap_err();
            assert_eq!(err.kind(), "Truncated", "cut at {cut}: {err}");
            assert!(err.is_fatal());
        }
    }

    #[test]
    fn bad_magic_version_and_size_are_typed_errors() {
        let mut bad_magic = frame_bytes("{}");
        bad_magic[0] = b'X';
        assert_eq!(
            read_frame(&mut bad_magic.as_slice()).unwrap_err(),
            WireError::BadMagic
        );

        let mut future = frame_bytes("{}");
        future[4..8].copy_from_slice(&99u32.to_le_bytes());
        assert_eq!(
            read_frame(&mut future.as_slice()).unwrap_err(),
            WireError::VersionMismatch { found: 99 }
        );

        let mut huge = frame_bytes("{}");
        huge[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            read_frame(&mut huge.as_slice()).unwrap_err(),
            WireError::FrameTooLarge {
                len: u64::from(u32::MAX)
            }
        );

        let mut not_utf8 = frame_bytes("ab");
        let len = not_utf8.len();
        not_utf8[len - 1] = 0xff;
        assert_eq!(
            read_frame(&mut not_utf8.as_slice()).unwrap_err(),
            WireError::NotUtf8
        );
    }

    #[test]
    fn requests_parse_and_reject_typed() {
        let req =
            parse_request("{\"op\":\"run\",\"id\":3,\"session\":9,\"budget\":1000,\"stream\":1}")
                .unwrap();
        assert_eq!(req.id, 3);
        assert_eq!(
            req.op,
            RequestOp::Run {
                session: 9,
                budget: 1000,
                stream: true
            }
        );
        assert_eq!(req.op.session(), Some(9));

        assert_eq!(
            parse_request("{\"op\":\"warp\",\"id\":1}").unwrap_err(),
            WireError::UnknownOp("warp".into())
        );
        assert_eq!(
            parse_request("{\"id\":1}").unwrap_err(),
            WireError::Malformed { what: "op" }
        );
        let missing = parse_request("{\"op\":\"load\",\"session\":1}").unwrap_err();
        assert_eq!(missing, WireError::Malformed { what: "workload" });
        assert!(!missing.is_fatal(), "payload errors keep the stream alive");
    }

    #[test]
    fn error_payloads_are_flat_json() {
        let doc = error_json(4, Some(2), "NoProgram", "no program loaded");
        assert_eq!(json::u64_field(&doc, "id"), Some(4));
        assert_eq!(json::u64_field(&doc, "session"), Some(2));
        assert_eq!(
            json::string_field(&doc, "error").as_deref(),
            Some("NoProgram")
        );
    }
}
