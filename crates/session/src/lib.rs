//! # tm3270-session
//!
//! Simulation-as-a-service: the stable session API carved out of
//! `tm3270-core`/`tm3270-harness`, plus the std-only serving front-end
//! behind the `tm3270d` daemon.
//!
//! Three layers, each usable on its own:
//!
//! * [`Session`] — the embedding API: an explicit machine lifecycle
//!   (`create → load → run/step → inspect → snapshot/restore → trace
//!   attach/detach`) in which **every operation returns a typed
//!   result** — [`SessionError`] wraps the existing
//!   [`SimError`](tm3270_core::SimError) /
//!   [`SnapshotError`](tm3270_core::SnapshotError) taxonomy and never
//!   panics across the boundary. Runs are *resumable*:
//!   [`Session::run_to`] drives the machine toward an absolute cycle
//!   target, so a run sliced into quanta is bit-identical to an
//!   uninterrupted [`Machine::run_with`](tm3270_core::Machine::run_with)
//!   call (the property the server's fairness scheduling rests on).
//! * [`wire`] — the versioned, length-framed request/response encoding:
//!   a 12-byte header (magic `TM3W`, format version, payload length)
//!   followed by one flat JSON document, parsed with the
//!   `tm3270_obs::json` scanners. Malformed frames degrade into typed
//!   [`WireError`]s — truncated, bad magic, version mismatch, unknown
//!   op — never a panic or a hang.
//! * [`Server`] / [`Client`] — the TCP front-end: a bounded worker pool
//!   (on [`BoundedQueue`](tm3270_harness::BoundedQueue) command
//!   inboxes) multiplexes many concurrent sessions. A `Machine` holds
//!   `Rc`-based trace plumbing and is deliberately `!Send`, so every
//!   session is *owned* by one worker thread for its whole life;
//!   commands cross threads, machines never do. Runs execute in
//!   round-robin cycle quanta enforced via `RunOptions` budgets, so one
//!   hot session cannot starve its peers; per-connection output queues
//!   are bounded for backpressure; graceful shutdown checkpoints live
//!   sessions through the `TM3S` snapshot container and reports per-run
//!   wall/attempt stats through the harness
//!   [`SweepTelemetry`](tm3270_harness::SweepTelemetry) hooks.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod client;
mod server;
mod session;
pub mod wire;

pub use client::{Client, ClientError, LoadReply, RunReply};
pub use server::{ServeReport, Server, ServerConfig, ShutdownHandle};
pub use session::{config_named, Inspect, LoadInfo, RunStatus, Session, SessionError, StepReport};
pub use wire::{Request, RequestOp, WireError};
