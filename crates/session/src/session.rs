//! The [`Session`] lifecycle object: the embedding-facing API over a
//! [`Machine`] in which every operation returns a typed result and a
//! run can be sliced into resumable quanta.

use std::cell::RefCell;
use std::rc::Rc;

use tm3270_core::{
    Machine, MachineConfig, RunOptions, RunStats, SimError, Snapshot, SnapshotError,
};
use tm3270_isa::{Program, Reg};
use tm3270_kernels::{find_workload, Kernel};
use tm3270_obs::{ChromeTraceSink, FanoutSink, SinkHandle, TimelineSink};

/// Upper bound on one [`Session::read_data`] probe, so a wire request
/// cannot ask a worker to materialize gigabytes.
pub const MAX_READ_BYTES: usize = 1 << 20;

/// Typed error of every [`Session`] operation. Reuses the existing
/// [`SimError`] / [`SnapshotError`] taxonomy for the machine-level
/// causes; the session-level causes (lifecycle misuse, unknown names)
/// get their own variants. No session operation panics.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionError {
    /// The operation needs a loaded program (`load` was never called,
    /// or failed).
    NoProgram,
    /// `load` was called on a session that already holds a program;
    /// create a fresh session instead of reloading in place.
    AlreadyLoaded,
    /// The workload name is not in the kernel registry.
    UnknownWorkload(String),
    /// The machine-configuration name is not one of the §6 suite names
    /// (`a`–`d`, `tm3270`, `tm3260`).
    UnknownConfig(String),
    /// The workload does not build (schedule) for this configuration.
    Build(String),
    /// The simulation failed with a typed machine error.
    Sim(SimError),
    /// Snapshot restore rejected the container.
    Snapshot(SnapshotError),
    /// The workload verifier found a mismatch against the golden
    /// reference.
    Verify(String),
    /// `verify` was called on a session without a registry workload
    /// (raw programs carry no golden reference).
    NoVerifier,
    /// `trace_detach` without an attached trace.
    NoTrace,
    /// `trace_attach` while a trace is already attached.
    TraceActive,
    /// A request argument is out of range (register index, read size).
    InvalidArg(String),
}

impl SessionError {
    /// A stable machine-readable tag for the wire protocol.
    pub fn kind(&self) -> &'static str {
        match self {
            SessionError::NoProgram => "NoProgram",
            SessionError::AlreadyLoaded => "AlreadyLoaded",
            SessionError::UnknownWorkload(_) => "UnknownWorkload",
            SessionError::UnknownConfig(_) => "UnknownConfig",
            SessionError::Build(_) => "Build",
            SessionError::Sim(e) => e.kind(),
            SessionError::Snapshot(_) => "Snapshot",
            SessionError::Verify(_) => "Verify",
            SessionError::NoVerifier => "NoVerifier",
            SessionError::NoTrace => "NoTrace",
            SessionError::TraceActive => "TraceActive",
            SessionError::InvalidArg(_) => "InvalidArg",
        }
    }
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::NoProgram => write!(f, "no program loaded"),
            SessionError::AlreadyLoaded => write!(f, "session already holds a program"),
            SessionError::UnknownWorkload(name) => {
                write!(f, "workload {name:?} is not in the registry")
            }
            SessionError::UnknownConfig(name) => {
                write!(f, "machine configuration {name:?} is unknown")
            }
            SessionError::Build(e) => write!(f, "build failed: {e}"),
            SessionError::Sim(e) => write!(f, "simulation failed: {e}"),
            SessionError::Snapshot(e) => write!(f, "snapshot rejected: {e}"),
            SessionError::Verify(e) => write!(f, "verification failed: {e}"),
            SessionError::NoVerifier => write!(f, "session has no workload verifier"),
            SessionError::NoTrace => write!(f, "no trace attached"),
            SessionError::TraceActive => write!(f, "a trace is already attached"),
            SessionError::InvalidArg(e) => write!(f, "invalid argument: {e}"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<SimError> for SessionError {
    fn from(e: SimError) -> SessionError {
        SessionError::Sim(e)
    }
}

impl From<SnapshotError> for SessionError {
    fn from(e: SnapshotError) -> SessionError {
        SessionError::Snapshot(e)
    }
}

/// Looks up a [`MachineConfig`] by its short wire name: `a`–`d` (the §6
/// evaluation suite), `tm3270` (= `d`) or `tm3260` (= `a`), case
/// insensitive.
pub fn config_named(name: &str) -> Option<MachineConfig> {
    match name.to_ascii_lowercase().as_str() {
        "a" | "tm3260" => Some(MachineConfig::config_a()),
        "b" => Some(MachineConfig::config_b()),
        "c" => Some(MachineConfig::config_c()),
        "d" | "tm3270" => Some(MachineConfig::config_d()),
        _ => None,
    }
}

/// What [`Session::load_workload`] reports back: everything a remote
/// client needs to drive and cross-check the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadInfo {
    /// The workload's cycle budget (ample for the slowest config).
    pub cycle_budget: u64,
    /// FNV-1a digest of the encoded binary image actually loaded — the
    /// same fingerprint as the registry's golden checksum.
    pub checksum: u64,
    /// VLIW instructions in the scheduled program.
    pub instrs: u64,
}

/// Outcome of one [`Session::run`] / [`Session::run_to`] slice.
#[derive(Debug, Clone, PartialEq)]
pub enum RunStatus {
    /// The program halted; final statistics attached (boxed — the full
    /// counter set dwarfs the `Running` cursor).
    Halted(Box<RunStats>),
    /// The cycle target was reached first; the session can keep
    /// running from exactly this point.
    Running {
        /// Machine cycle counter at the end of the slice.
        cycle: u64,
        /// VLIW instructions issued so far.
        instrs: u64,
    },
}

/// Outcome of one [`Session::step`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepReport {
    /// Instructions actually executed (less than requested when the
    /// program halts mid-way).
    pub stepped: u64,
    /// Program counter after stepping.
    pub pc: u64,
    /// Cycle counter after stepping.
    pub cycle: u64,
    /// Whether the program has halted.
    pub halted: bool,
}

/// One [`Session::inspect`] snapshot: position, liveness and the
/// statistics accumulated so far.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Inspect {
    /// Program counter.
    pub pc: u64,
    /// Cycle counter.
    pub cycle: u64,
    /// Whether the program has halted.
    pub halted: bool,
    /// FNV-1a digest of the 128 general registers.
    pub reg_digest: u64,
    /// Statistics so far (mid-run values; final at halt).
    pub stats: RunStats,
}

/// The attached trace plumbing: the staging handle (for flushes), the
/// Chrome sink and the optional timeline sampler.
struct Trace {
    handle: SinkHandle,
    chrome: Rc<RefCell<ChromeTraceSink>>,
    timeline: Option<Rc<RefCell<TimelineSink>>>,
}

/// One simulated machine behind a stable, panic-free lifecycle API:
/// `create → load → run/step → inspect → snapshot/restore → trace
/// attach/detach` (see the crate docs).
///
/// A session holds `Rc`-based trace plumbing and is deliberately
/// `!Send`: the serving layer shards sessions onto owning worker
/// threads instead of migrating them.
pub struct Session {
    config: MachineConfig,
    machine: Option<Machine>,
    kernel: Option<Box<dyn Kernel>>,
    workload: Option<&'static str>,
    trace: Option<Trace>,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("config", &self.config.name)
            .field("workload", &self.workload)
            .field("loaded", &self.machine.is_some())
            .field("traced", &self.trace.is_some())
            .finish()
    }
}

/// FNV-1a-64 over a byte slice (the workload golden-checksum digest).
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in bytes {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

impl Session {
    /// Creates an empty session targeting `config`. Infallible: nothing
    /// is simulated until a program is loaded.
    pub fn create(config: MachineConfig) -> Session {
        Session {
            config,
            machine: None,
            kernel: None,
            workload: None,
            trace: None,
        }
    }

    /// [`create`](Session::create) from a wire configuration name (see
    /// [`config_named`]).
    ///
    /// # Errors
    ///
    /// [`SessionError::UnknownConfig`] for names outside the suite.
    pub fn create_named(name: &str) -> Result<Session, SessionError> {
        config_named(name)
            .map(Session::create)
            .ok_or_else(|| SessionError::UnknownConfig(name.to_string()))
    }

    /// The session's machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// The loaded registry workload's name, if any.
    pub fn workload(&self) -> Option<&'static str> {
        self.workload
    }

    /// Whether a program is loaded.
    pub fn is_loaded(&self) -> bool {
        self.machine.is_some()
    }

    /// Whether the loaded program has halted (`false` when nothing is
    /// loaded).
    pub fn is_halted(&self) -> bool {
        self.machine.as_ref().is_some_and(Machine::is_halted)
    }

    /// The machine cycle counter (`None` when nothing is loaded).
    pub fn cycle(&self) -> Option<u64> {
        self.machine.as_ref().map(Machine::cycle)
    }

    /// The underlying machine, for embedders that need read access
    /// beyond [`inspect`](Session::inspect) (`None` when nothing is
    /// loaded).
    pub fn machine(&self) -> Option<&Machine> {
        self.machine.as_ref()
    }

    fn machine_mut(&mut self) -> Result<&mut Machine, SessionError> {
        self.machine.as_mut().ok_or(SessionError::NoProgram)
    }

    fn machine_ref(&self) -> Result<&Machine, SessionError> {
        self.machine.as_ref().ok_or(SessionError::NoProgram)
    }

    /// Loads a raw scheduled [`Program`] (no registry verifier
    /// attached).
    ///
    /// # Errors
    ///
    /// [`SessionError::AlreadyLoaded`] on a loaded session, or the
    /// machine-construction [`SimError`] (encode failures).
    pub fn load_program(&mut self, program: Program) -> Result<LoadInfo, SessionError> {
        if self.machine.is_some() {
            return Err(SessionError::AlreadyLoaded);
        }
        let machine = Machine::new(self.config.clone(), program)?;
        let info = LoadInfo {
            cycle_budget: u64::MAX,
            checksum: fnv64(&machine.image().bytes),
            instrs: machine.program().instrs.len() as u64,
        };
        self.machine = Some(machine);
        Ok(info)
    }

    /// Loads a workload from the kernel registry by name: builds
    /// (schedules) it for this session's configuration, constructs the
    /// machine and runs the kernel's input setup. `scale` is the
    /// registry scale factor (it only affects the experiment workloads,
    /// not the eleven golden kernels).
    ///
    /// # Errors
    ///
    /// [`SessionError::AlreadyLoaded`], [`SessionError::UnknownWorkload`],
    /// [`SessionError::Build`], or the machine-construction
    /// [`SimError`].
    pub fn load_workload(&mut self, scale: u64, name: &str) -> Result<LoadInfo, SessionError> {
        if self.machine.is_some() {
            return Err(SessionError::AlreadyLoaded);
        }
        let workload = find_workload(scale, name)
            .ok_or_else(|| SessionError::UnknownWorkload(name.to_string()))?;
        let workload_name = workload.name();
        let kernel = workload.into_kernel();
        let program = kernel
            .build(&self.config.issue)
            .map_err(|e| SessionError::Build(e.to_string()))?;
        let mut machine = Machine::new(self.config.clone(), program)?;
        kernel.setup(&mut machine);
        let info = LoadInfo {
            cycle_budget: kernel.cycle_budget(),
            checksum: fnv64(&machine.image().bytes),
            instrs: machine.program().instrs.len() as u64,
        };
        self.machine = Some(machine);
        self.kernel = Some(kernel);
        self.workload = Some(workload_name);
        Ok(info)
    }

    /// Runs for up to `budget` more cycles (relative to the current
    /// cycle counter). Equivalent to
    /// [`run_to`](Session::run_to)`(cycle() + budget)`.
    ///
    /// # Errors
    ///
    /// See [`run_to`](Session::run_to).
    pub fn run(&mut self, budget: u64) -> Result<RunStatus, SessionError> {
        let cycle = self.cycle().ok_or(SessionError::NoProgram)?;
        self.run_to(cycle.saturating_add(budget))
    }

    /// Runs until the program halts or the machine's cycle counter
    /// reaches the absolute `target`. Reaching the target is **not** an
    /// error at this layer — it returns [`RunStatus::Running`] and the
    /// session resumes from exactly that point, so a run sliced into
    /// quanta (the server's fairness scheduling) is bit-identical to an
    /// uninterrupted [`Machine::run_with`] call with the full budget.
    ///
    /// # Errors
    ///
    /// [`SessionError::NoProgram`] on an unloaded session, or the
    /// run's typed [`SimError`] (never [`SimError::CycleLimit`], which
    /// is folded into [`RunStatus::Running`]). After a simulation
    /// error the session stays loaded for inspection or restore.
    pub fn run_to(&mut self, target: u64) -> Result<RunStatus, SessionError> {
        let machine = self.machine.as_mut().ok_or(SessionError::NoProgram)?;
        let outcome = machine.run_with(RunOptions::budget(target));
        match outcome.result {
            Ok(stats) => Ok(RunStatus::Halted(Box::new(stats))),
            Err(SimError::CycleLimit { .. }) => Ok(RunStatus::Running {
                cycle: machine.cycle(),
                instrs: machine.stats_snapshot().instrs,
            }),
            Err(e) => Err(SessionError::Sim(e)),
        }
    }

    /// Executes up to `count` VLIW instructions, stopping early at
    /// halt. Stepping a halted session is a no-op report, not an error.
    ///
    /// # Errors
    ///
    /// [`SessionError::NoProgram`], or the step's typed [`SimError`].
    pub fn step(&mut self, count: u64) -> Result<StepReport, SessionError> {
        let machine = self.machine.as_mut().ok_or(SessionError::NoProgram)?;
        let mut stepped = 0;
        while stepped < count && !machine.is_halted() {
            machine.step().map_err(SessionError::Sim)?;
            stepped += 1;
        }
        let report = StepReport {
            stepped,
            pc: machine.pc() as u64,
            cycle: machine.cycle(),
            halted: machine.is_halted(),
        };
        if let Some(trace) = &self.trace {
            trace.handle.flush();
        }
        Ok(report)
    }

    /// Position, liveness and accumulated statistics.
    ///
    /// # Errors
    ///
    /// [`SessionError::NoProgram`] on an unloaded session.
    pub fn inspect(&self) -> Result<Inspect, SessionError> {
        let machine = self.machine_ref()?;
        Ok(Inspect {
            pc: machine.pc() as u64,
            cycle: machine.cycle(),
            halted: machine.is_halted(),
            reg_digest: machine.reg_digest(),
            stats: machine.stats_snapshot(),
        })
    }

    /// Reads one general register.
    ///
    /// # Errors
    ///
    /// [`SessionError::NoProgram`], or [`SessionError::InvalidArg`] for
    /// indices ≥ 128.
    pub fn reg(&self, index: u32) -> Result<u32, SessionError> {
        let machine = self.machine_ref()?;
        if index >= 128 {
            return Err(SessionError::InvalidArg(format!(
                "register index {index} out of range (0..128)"
            )));
        }
        Ok(machine.reg(Reg::new(index as u8)))
    }

    /// Reads `len` bytes of flat data memory at `addr` (addresses wrap
    /// at the flat-memory boundary, like [`Machine::read_data`]).
    ///
    /// # Errors
    ///
    /// [`SessionError::NoProgram`], or [`SessionError::InvalidArg`]
    /// when `len` exceeds [`MAX_READ_BYTES`].
    pub fn read_data(&self, addr: u32, len: usize) -> Result<Vec<u8>, SessionError> {
        let machine = self.machine_ref()?;
        if len > MAX_READ_BYTES {
            return Err(SessionError::InvalidArg(format!(
                "read of {len} bytes exceeds the {MAX_READ_BYTES}-byte probe limit"
            )));
        }
        Ok(machine.read_data(addr, len))
    }

    /// Serializes the complete mutable machine state into a versioned
    /// `TM3S` [`Snapshot`].
    ///
    /// # Errors
    ///
    /// [`SessionError::NoProgram`] on an unloaded session.
    pub fn snapshot(&self) -> Result<Snapshot, SessionError> {
        Ok(self.machine_ref()?.snapshot())
    }

    /// Restores a snapshot taken from a machine with the same
    /// configuration and program; the session then continues
    /// bit-identically to the snapshotted run.
    ///
    /// # Errors
    ///
    /// [`SessionError::NoProgram`], or the typed [`SnapshotError`] when
    /// the container is truncated, corrupt or from another version.
    pub fn restore(&mut self, snapshot: &Snapshot) -> Result<(), SessionError> {
        self.machine_mut()?.restore(snapshot)?;
        Ok(())
    }

    /// Checks the machine's memory against the loaded workload's golden
    /// reference.
    ///
    /// # Errors
    ///
    /// [`SessionError::NoProgram`], [`SessionError::NoVerifier`] when
    /// no registry workload is loaded, or [`SessionError::Verify`] with
    /// the first mismatch.
    pub fn verify(&self) -> Result<(), SessionError> {
        let machine = self.machine_ref()?;
        let kernel = self.kernel.as_ref().ok_or(SessionError::NoVerifier)?;
        kernel.verify(machine).map_err(SessionError::Verify)
    }

    /// Attaches a Chrome-trace sink (capped at `limit` events) and,
    /// when `timeline_interval > 0`, a timeline sampler at that cycle
    /// interval. Tracing only observes — cycle-level behavior is
    /// unchanged.
    ///
    /// # Errors
    ///
    /// [`SessionError::NoProgram`], or [`SessionError::TraceActive`]
    /// when a trace is already attached.
    pub fn trace_attach(
        &mut self,
        limit: usize,
        timeline_interval: u64,
    ) -> Result<(), SessionError> {
        if self.trace.is_some() {
            return Err(SessionError::TraceActive);
        }
        let machine = self.machine.as_mut().ok_or(SessionError::NoProgram)?;
        let chrome = Rc::new(RefCell::new(ChromeTraceSink::with_limit(limit)));
        let timeline = (timeline_interval > 0)
            .then(|| Rc::new(RefCell::new(TimelineSink::new(timeline_interval))));
        let handle = match &timeline {
            Some(tl) => {
                let mut fan = FanoutSink::new();
                fan.push(chrome.clone());
                fan.push(tl.clone());
                SinkHandle::from(Rc::new(RefCell::new(fan)))
            }
            None => SinkHandle::from(chrome.clone()),
        };
        machine.attach_sink(handle.clone());
        self.trace = Some(Trace {
            handle,
            chrome,
            timeline,
        });
        Ok(())
    }

    /// Detaches the trace and renders it as one Chrome `trace_event`
    /// JSON document (with the timeline's counter tracks spliced in
    /// when a sampler was attached).
    ///
    /// # Errors
    ///
    /// [`SessionError::NoTrace`] when nothing is attached.
    pub fn trace_detach(&mut self) -> Result<String, SessionError> {
        let trace = self.trace.take().ok_or(SessionError::NoTrace)?;
        trace.handle.flush();
        if let Some(machine) = self.machine.as_mut() {
            machine.attach_sink(SinkHandle::disabled());
        }
        let doc = match &trace.timeline {
            Some(tl) => trace
                .chrome
                .borrow()
                .to_json_with(&tl.borrow().chrome_rows()),
            None => trace.chrome.borrow().to_json(),
        };
        Ok(doc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm3270_asm::ProgramBuilder;
    use tm3270_isa::{Op, Opcode};

    fn tiny_program(config: &MachineConfig) -> Program {
        let mut b = ProgramBuilder::new(config.issue);
        b.op(Op::imm(Reg::new(2), 21));
        b.op(Op::imm(Reg::new(3), 2));
        b.op(Op::rrr(Opcode::Imul, Reg::new(4), Reg::new(2), Reg::new(3)));
        b.build().expect("schedulable")
    }

    #[test]
    fn lifecycle_on_a_raw_program() {
        let mut s = Session::create(MachineConfig::tm3270());
        assert_eq!(s.run(100).unwrap_err(), SessionError::NoProgram);
        let info = s
            .load_program(tiny_program(&MachineConfig::tm3270()))
            .unwrap();
        assert!(info.instrs > 0);
        assert_eq!(
            s.load_program(tiny_program(&MachineConfig::tm3270()))
                .unwrap_err(),
            SessionError::AlreadyLoaded
        );
        match s.run(1_000_000).unwrap() {
            RunStatus::Halted(stats) => assert!(stats.cycles > 0),
            RunStatus::Running { .. } => panic!("tiny program must halt"),
        }
        assert_eq!(s.reg(4).unwrap(), 42);
        assert!(s.is_halted());
        assert_eq!(s.verify().unwrap_err(), SessionError::NoVerifier);
    }

    #[test]
    fn sliced_run_matches_uninterrupted_run() {
        let mut direct = Session::create_named("d").unwrap();
        direct.load_workload(20, "memset").unwrap();
        let direct_stats = match direct.run(200_000_000).unwrap() {
            RunStatus::Halted(stats) => stats,
            RunStatus::Running { .. } => panic!("memset must halt"),
        };

        let mut sliced = Session::create_named("d").unwrap();
        sliced.load_workload(20, "memset").unwrap();
        let mut slices = 0;
        let sliced_stats = loop {
            let target = sliced.cycle().unwrap() + 500;
            match sliced.run_to(target).unwrap() {
                RunStatus::Halted(stats) => break stats,
                RunStatus::Running { .. } => slices += 1,
            }
        };
        assert!(slices > 3, "the quantum must actually slice the run");
        assert_eq!(direct_stats, sliced_stats);
        assert_eq!(
            direct.machine().unwrap().reg_digest(),
            sliced.machine().unwrap().reg_digest()
        );
        sliced.verify().unwrap();
    }

    #[test]
    fn typed_errors_for_unknown_names_and_bad_args() {
        assert_eq!(
            Session::create_named("z").unwrap_err(),
            SessionError::UnknownConfig("z".into())
        );
        let mut s = Session::create_named("a").unwrap();
        assert_eq!(
            s.load_workload(20, "nope").unwrap_err(),
            SessionError::UnknownWorkload("nope".into())
        );
        s.load_workload(20, "memset").unwrap();
        assert_eq!(s.reg(200).unwrap_err().kind(), "InvalidArg");
        assert_eq!(
            s.read_data(0, MAX_READ_BYTES + 1).unwrap_err().kind(),
            "InvalidArg"
        );
        assert_eq!(s.trace_detach().unwrap_err(), SessionError::NoTrace);
    }

    #[test]
    fn snapshot_restores_into_a_fresh_session() {
        let mut s = Session::create_named("d").unwrap();
        s.load_workload(20, "memset").unwrap();
        s.step(100).unwrap();
        let snap = s.snapshot().unwrap();
        let s_stats = match s.run(200_000_000).unwrap() {
            RunStatus::Halted(stats) => stats,
            RunStatus::Running { .. } => panic!("memset must halt"),
        };

        let mut fresh = Session::create_named("d").unwrap();
        fresh.load_workload(20, "memset").unwrap();
        fresh.restore(&snap).unwrap();
        assert_eq!(fresh.cycle(), Some(snap_cycle(&snap, &s_stats)));
        let fresh_stats = match fresh.run(200_000_000).unwrap() {
            RunStatus::Halted(stats) => stats,
            RunStatus::Running { .. } => panic!("restored memset must halt"),
        };
        assert_eq!(s_stats, fresh_stats);
        fresh.verify().unwrap();
    }

    /// The restored cycle counter equals the snapshot point, not the
    /// final stats — recover it by restoring into a scratch machine.
    fn snap_cycle(snap: &Snapshot, _final_stats: &RunStats) -> u64 {
        let mut scratch = Session::create_named("d").unwrap();
        scratch.load_workload(20, "memset").unwrap();
        scratch.restore(snap).unwrap();
        scratch.cycle().unwrap()
    }

    #[test]
    fn trace_attach_detach_round_trip() {
        let mut s = Session::create_named("d").unwrap();
        s.load_workload(20, "memset").unwrap();
        s.trace_attach(10_000, 1_000).unwrap();
        assert_eq!(s.trace_attach(1, 0).unwrap_err(), SessionError::TraceActive);
        s.run(200_000_000).unwrap();
        let doc = s.trace_detach().unwrap();
        assert!(doc.contains("traceEvents"), "chrome document shape");
        assert!(
            doc.contains("\"ph\":\"C\""),
            "timeline counter rows spliced"
        );
        assert_eq!(s.trace_detach().unwrap_err(), SessionError::NoTrace);
    }
}
