//! Full-scale reproduction shape tests: the qualitative claims of the
//! paper's evaluation, asserted on the full Table 5 workload sizes.
//!
//! These run the complete Figure 7 suite and Table 3 streams; they are
//! `#[ignore]`d by default so `cargo test` stays fast — run them with
//!
//! ```text
//! cargo test --release -p tm3270-integration -- --ignored
//! ```

use tm3270_bench::{figure7_from_cells, geomean, run_suite, table3};
use tm3270_core::MachineConfig;
use tm3270_kernels::motion::MotionEst;
use tm3270_kernels::run_kernel;
use tm3270_kernels::synth::Mp3Proxy;

#[test]
#[ignore = "full-scale Figure 7 run (use --release --ignored)"]
fn figure7_shape_holds() {
    let cells = run_suite();
    let rows = figure7_from_cells(&cells);
    let row = |name: &str| {
        rows.iter()
            .find(|r| r.kernel == name)
            .unwrap_or_else(|| panic!("row {name}"))
    };

    // §6: "Typically, the TM3260 (configuration A) has the lowest
    // performance" — D beats A on every workload.
    for r in &rows {
        assert!(
            r.relative[3] > 1.0,
            "{}: D should beat A, got {:?}",
            r.kernel,
            r.relative
        );
    }

    // §6: "for the MPEG2 application, configuration A outperforms
    // configurations B and C" (the 128-byte-line capacity effect) — the
    // disruptive stream shows it.
    let a = row("mpeg2_a");
    assert!(
        a.relative[1] <= 1.02 && a.relative[2] <= 1.05,
        "mpeg2_a anomaly missing: {:?}",
        a.relative
    );
    // And configuration D more than makes up for it.
    assert!(a.relative[3] > 2.0, "mpeg2_a D gain: {:?}", a.relative);

    // §6: "the TM3270 gives a performance gain of 2.29 over the TM3260"
    // (we accept the band 1.6 - 3.0 for the geometric mean of D/A).
    let d_gains: Vec<f64> = rows.iter().map(|r| r.relative[3]).collect();
    let g = geomean(&d_gains);
    assert!((1.6..3.0).contains(&g), "geomean D/A = {g:.2}");

    // §6: EEMBC kernels and TV algorithms show modest gains, dominated by
    // the frequency ratio (350/240 = 1.46).
    for name in [
        "filter",
        "rgb2yuv",
        "rgb2cmyk",
        "rgb2yiq",
        "filmdet",
        "majority_sel",
    ] {
        let r = row(name);
        assert!(
            (1.1..2.2).contains(&r.relative[3]),
            "{name}: modest gain expected, got {:?}",
            r.relative
        );
    }

    // memcpy gains substantially from A to B (write-miss policy).
    assert!(
        row("memcpy").relative[1] > 1.3,
        "{:?}",
        row("memcpy").relative
    );
}

#[test]
#[ignore = "full-scale Table 3 run (use --release --ignored)"]
fn table3_shape_holds() {
    let rows = table3(10);
    for row in &rows {
        assert!(
            (1.3..2.2).contains(&row.speedup),
            "{}: speedup {:.2} outside the Table 3 band",
            row.field,
            row.speedup
        );
    }
    // Instructions-per-bit ordering follows the field statistics:
    // I < P < B (B fields decode the most symbols per bit).
    assert!(rows[0].base_ipb < rows[1].base_ipb);
    assert!(rows[1].base_ipb < rows[2].base_ipb);
    assert!(rows[0].opt_ipb < rows[1].opt_ipb);
    assert!(rows[1].opt_ipb < rows[2].opt_ipb);
}

#[test]
#[ignore = "full-scale motion-estimation run (use --release --ignored)"]
fn motion_estimation_gain_exceeds_two() {
    let cfg = MachineConfig::tm3270();
    let base = run_kernel(&MotionEst::evaluation(false), &cfg).unwrap();
    let opt = run_kernel(&MotionEst::evaluation(true), &cfg).unwrap();
    let speedup = base.cycles as f64 / opt.cycles as f64;
    assert!(speedup > 2.0, "paper [12]: > 2x, got {speedup:.2}");
}

#[test]
#[ignore = "full-scale MP3 power-signature run (use --release --ignored)"]
fn mp3_proxy_matches_paper_signature() {
    let stats = run_kernel(&Mp3Proxy::paper(), &MachineConfig::tm3270()).unwrap();
    assert!((3.5..5.0).contains(&stats.opi()), "OPI {:.2}", stats.opi());
    assert!(stats.cpi() < 1.3, "CPI {:.2}", stats.cpi());
}
