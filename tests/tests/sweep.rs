//! Cross-crate determinism tests of the sweep engine: the same campaign
//! seed must produce byte-identical aggregate documents at 1, 2 and 8
//! worker threads, and one poisoned job must surface as a typed
//! [`JobError`] without disturbing the rest of the sweep.

use tm3270_bench::campaign::{run_campaign, CampaignOptions};
use tm3270_bench::{run_suite_with, suite_json};
use tm3270_harness::{sweep, JobError, SweepOptions};

fn campaign_opts(threads: usize) -> CampaignOptions {
    CampaignOptions {
        runs: 200,
        sweep: SweepOptions::new().seed(1).threads(threads),
        verbose: false,
    }
}

#[test]
fn fault_campaign_json_is_byte_identical_at_1_2_and_8_threads() {
    let one = run_campaign(&campaign_opts(1)).to_json();
    let two = run_campaign(&campaign_opts(2)).to_json();
    let eight = run_campaign(&campaign_opts(8)).to_json();
    assert_eq!(one, two);
    assert_eq!(one, eight);
    // The document is the machine-readable campaign summary, not a stub.
    assert!(one.starts_with("{\"seed\":1,\"runs\":200,"), "{one}");
    assert!(one.contains("\"outcomes\":{"), "{one}");
}

#[test]
fn suite_json_is_byte_identical_at_1_2_and_8_threads() {
    let one = suite_json(&run_suite_with(&SweepOptions::new().threads(1)));
    let two = suite_json(&run_suite_with(&SweepOptions::new().threads(2)));
    let eight = suite_json(&run_suite_with(&SweepOptions::new().threads(8)));
    assert_eq!(one, two);
    assert_eq!(one, eight);
    // 11 golden kernels x 4 configurations, in kernel-major order.
    assert_eq!(one.matches("\"kernel\":").count(), 44);
    assert!(
        one.find("\"kernel\":\"memset\"").unwrap() < one.find("\"kernel\":\"memcpy\"").unwrap()
    );
}

#[test]
fn a_poisoned_job_yields_a_job_error_and_the_rest_complete() {
    let results = sweep(20, &SweepOptions::new().threads(4).seed(3), |ctx| {
        if ctx.id == 7 {
            panic!("deliberately poisoned job {}", ctx.id);
        }
        Ok(ctx.seed)
    });
    assert_eq!(results.len(), 20);
    for (id, result) in results.iter().enumerate() {
        if id == 7 {
            let err = result.as_ref().unwrap_err();
            assert_eq!(err.kind(), "Panicked");
            assert!(
                matches!(err, JobError::Panicked(msg) if msg.contains("deliberately poisoned job 7"))
            );
        } else {
            assert!(result.is_ok(), "job {id} should have completed: {result:?}");
        }
    }
}

#[test]
fn campaign_counts_an_escaped_panic_without_losing_the_sweep() {
    // The campaign itself never panics (the fault harness is panic-free),
    // so exercise the accounting through the engine directly: a panicked
    // job must not poison neighbouring jobs or the aggregate ordering.
    let results = sweep(50, &SweepOptions::new().threads(8).seed(11), |ctx| {
        if ctx.id % 17 == 5 {
            panic!("boom {}", ctx.id);
        }
        Ok(ctx.id * 2)
    });
    let panicked: Vec<usize> = results
        .iter()
        .enumerate()
        .filter(|(_, r)| r.is_err())
        .map(|(id, _)| id)
        .collect();
    assert_eq!(panicked, vec![5, 22, 39]);
    for (id, result) in results.iter().enumerate() {
        if let Ok(v) = result {
            assert_eq!(*v, id * 2);
        }
    }
}
