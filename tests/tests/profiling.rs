//! Observability integration tests: cycle conservation of the
//! stall-attribution buckets on the golden kernels, well-formedness of
//! the Chrome `trace_event` export, the configurable crash-trace ring,
//! and fault-injection event emission.

use std::cell::RefCell;
use std::rc::Rc;

use tm3270_asm::ProgramBuilder;
use tm3270_bench::profile::{
    find_workload, golden_names, profile_kernel, profile_kernel_with, ProfileOptions,
};
use tm3270_core::{Machine, MachineConfig, RunOptions, SimError};
use tm3270_fault::{FaultInjector, FaultSite};
use tm3270_obs::{
    CounterSink, FanoutSink, ProfileSink, RingSink, SinkHandle, TimelineSink, TraceEvent,
};

/// The acceptance criterion of the observability layer: on every golden
/// kernel, the counter sink's stall buckets decompose `RunStats.cycles`
/// exactly (issue + ifetch-stall + data-stall + watchdog-idle), and the
/// event-derived cache counters agree with the memory system's own
/// statistics.
#[test]
fn golden_kernels_conserve_cycles() {
    let config = MachineConfig::tm3270();
    for name in golden_names() {
        let kernel = find_workload(name).unwrap_or_else(|| panic!("{name} in registry"));
        let p = profile_kernel(kernel.as_ref(), &config, false)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        p.check_conservation()
            .unwrap_or_else(|e| panic!("conservation: {e}"));

        // The event stream must reconstruct the cache statistics the
        // memory system keeps independently.
        let mem = &p.stats.mem;
        assert_eq!(
            p.counters.dcache.hits, mem.dcache.hits,
            "{name} dcache hits"
        );
        assert_eq!(
            p.counters.dcache.partial_hits, mem.dcache.partial_hits,
            "{name} dcache partial hits"
        );
        assert_eq!(
            p.counters.dcache.misses, mem.dcache.misses,
            "{name} dcache misses"
        );
        assert_eq!(
            p.counters.dcache.prefetch_hits, mem.dcache.prefetch_hits,
            "{name} prefetch hits"
        );
        assert_eq!(
            p.counters.icache.hits, mem.icache.hits,
            "{name} icache hits"
        );
        assert_eq!(
            p.counters.icache.misses, mem.icache.misses,
            "{name} icache misses"
        );
        assert_eq!(
            p.counters.prefetch_issued, mem.prefetch.issued,
            "{name} prefetches issued"
        );
        assert_eq!(
            p.counters.branches_resolved, p.stats.branches,
            "{name} branches"
        );
        assert_eq!(
            p.counters.branches_taken, p.stats.taken_branches,
            "{name} taken branches"
        );
        let dram = p.counters.dram();
        let dram_tx: u64 = dram.values().map(|d| d.transactions).sum();
        assert_eq!(dram_tx, mem.dram.transfers, "{name} dram transfers");
        let dram_bytes: u64 = dram.values().map(|d| d.bytes).sum();
        assert_eq!(dram_bytes, mem.dram.bytes, "{name} dram bytes");
    }
}

/// Conservation is configuration-independent: the same kernel profiled
/// on all four §6 configurations (different write-miss policies, line
/// sizes, clock ratios) decomposes exactly on each.
#[test]
fn conservation_holds_across_configs() {
    let kernel = find_workload("filter").expect("filter in registry");
    for config in MachineConfig::evaluation_suite() {
        let p = profile_kernel(kernel.as_ref(), &config, false)
            .unwrap_or_else(|e| panic!("{}: {e}", config.name));
        p.check_conservation()
            .unwrap_or_else(|e| panic!("{}: {e}", config.name));
    }
}

/// Tentpole acceptance: per-PC hot-spot buckets sum to
/// `RunStats.cycles` exactly, and timeline interval deltas sum to the
/// final counter totals, on all eleven golden kernels under both the
/// cheapest (A) and the full (D) machine configurations.
#[test]
fn hotspot_and_timeline_conservation_on_golden_kernels() {
    let opts = ProfileOptions {
        hotspots: true,
        timeline: Some(1000),
        ..ProfileOptions::default()
    };
    for config in [MachineConfig::config_a(), MachineConfig::config_d()] {
        for name in golden_names() {
            let kernel = find_workload(name).unwrap_or_else(|| panic!("{name} in registry"));
            let p = profile_kernel_with(kernel.as_ref(), &config, &opts)
                .unwrap_or_else(|e| panic!("{name} on {}: {e}", config.name));
            // check_conservation covers both guarantees; assert the raw
            // sums too so a future regression names the exact quantity.
            p.check_conservation()
                .unwrap_or_else(|e| panic!("{name} on {}: {e}", config.name));
            let hs = p.hotspots.as_ref().expect("hotspots requested");
            let block_sum: u64 = hs.blocks.iter().map(|b| b.profile.cycles()).sum();
            assert_eq!(
                block_sum, p.stats.cycles,
                "{name} on {}: block cycles must equal RunStats.cycles",
                config.name
            );
            let tl = p.timeline.as_ref().expect("timeline requested");
            let totals = tl.totals();
            let b = p.counters.buckets();
            assert_eq!(
                totals.issue,
                b.issue + b.watchdog_idle,
                "{name} on {}: timeline issue deltas",
                config.name
            );
            assert_eq!(
                totals.ifetch_stall + totals.data_stall,
                b.ifetch_stall + b.data_stall,
                "{name} on {}: timeline stall deltas",
                config.name
            );
            assert_eq!(
                totals.events, p.counters.events,
                "{name} on {}: every event lands in exactly one sample",
                config.name
            );
        }
    }
}

/// Conservation also holds for runs that end in an error: a jump-only
/// livelock aborted by the watchdog still decomposes the cycle count at
/// the instant of the error, with the idle window reclassified into the
/// `watchdog_idle` bucket.
#[test]
fn watchdog_abort_conserves_cycles() {
    let config = MachineConfig::tm3270();
    let mut b = ProgramBuilder::new(config.issue);
    let top = b.bind_here();
    b.jump(top);
    let mut m = Machine::new(config, b.build().unwrap()).unwrap();
    let counters = Rc::new(RefCell::new(CounterSink::new()));
    m.attach_sink(SinkHandle::from(counters.clone()));
    m.set_watchdog(500);

    let outcome = m.run_with(RunOptions::budget(100_000).with_report());
    let report = outcome.report.expect("livelock must abort");
    assert!(matches!(report.error, SimError::NoProgress { .. }));
    let c = counters.borrow();
    let b = c.buckets();
    assert_eq!(
        b.total(),
        report.cycle,
        "buckets must sum to the abort cycle"
    );
    assert!(b.watchdog_idle > 0, "idle window reclassified");
    assert_eq!(c.watchdog_fired, 1);
}

/// The watchdog-crash path conserves the per-PC hot-spot attribution
/// and the interval timeline too: an aborted run's per-PC (and block)
/// cycles sum to the cycle count at the abort, and the timeline deltas
/// still sum to the bucket totals.
#[test]
fn watchdog_abort_conserves_hotspots_and_timeline() {
    let config = MachineConfig::tm3270();
    let mut b = ProgramBuilder::new(config.issue);
    let top = b.bind_here();
    b.jump(top);
    let mut m = Machine::new(config, b.build().unwrap()).unwrap();
    let jump_targets = m.program().jump_targets.clone();
    let profile = Rc::new(RefCell::new(ProfileSink::new(m.program().instrs.len())));
    let timeline = Rc::new(RefCell::new(TimelineSink::new(100)));
    let mut fan = FanoutSink::new();
    fan.push(profile.clone());
    fan.push(timeline.clone());
    m.attach_sink(SinkHandle::from(Rc::new(RefCell::new(fan))));
    m.set_watchdog(500);

    let outcome = m.run_with(RunOptions::budget(100_000).with_report());
    let report = outcome.report.expect("livelock must abort");
    assert!(matches!(report.error, SimError::NoProgress { .. }));

    let ps = profile.borrow();
    assert_eq!(
        ps.total_cycles(),
        report.cycle,
        "per-PC cycles must sum to the abort cycle"
    );
    assert!(ps.watchdog_idle() > 0, "idle window recorded");
    assert!(ps.watchdog_pc().is_some(), "abort PC recorded");
    let block_sum: u64 = ps
        .blocks(&jump_targets)
        .iter()
        .map(|b| b.profile.cycles())
        .sum();
    assert_eq!(block_sum, report.cycle, "block coalescing preserves sums");

    let totals = timeline.borrow().totals();
    assert_eq!(
        totals.issue + totals.ifetch_stall + totals.data_stall,
        report.cycle,
        "timeline deltas must sum to the abort cycle"
    );
}

/// Minimal JSON well-formedness checker (the repo carries no
/// serialization dependency). Parses a full document and returns every
/// `(ph, tid, ts)` triple found in the `traceEvents` rows.
mod mini_json {
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        Null,
        Bool(bool),
        Num(f64),
        Str(String),
        Array(Vec<Value>),
        Object(Vec<(String, Value)>),
    }

    impl Value {
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Object(kv) => kv.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }
    }

    pub struct Parser<'a> {
        s: &'a [u8],
        i: usize,
    }

    impl<'a> Parser<'a> {
        pub fn parse(s: &'a str) -> Result<Value, String> {
            let mut p = Parser {
                s: s.as_bytes(),
                i: 0,
            };
            let v = p.value()?;
            p.ws();
            if p.i != p.s.len() {
                return Err(format!("trailing bytes at {}", p.i));
            }
            Ok(v)
        }

        fn ws(&mut self) {
            while self.i < self.s.len() && self.s[self.i].is_ascii_whitespace() {
                self.i += 1;
            }
        }

        fn peek(&self) -> Option<u8> {
            self.s.get(self.i).copied()
        }

        fn expect(&mut self, b: u8) -> Result<(), String> {
            if self.peek() == Some(b) {
                self.i += 1;
                Ok(())
            } else {
                Err(format!("expected {:?} at {}", b as char, self.i))
            }
        }

        fn value(&mut self) -> Result<Value, String> {
            self.ws();
            match self.peek().ok_or("eof")? {
                b'{' => self.object(),
                b'[' => self.array(),
                b'"' => Ok(Value::Str(self.string()?)),
                b't' => self.lit("true", Value::Bool(true)),
                b'f' => self.lit("false", Value::Bool(false)),
                b'n' => self.lit("null", Value::Null),
                _ => self.number(),
            }
        }

        fn lit(&mut self, word: &str, v: Value) -> Result<Value, String> {
            if self.s[self.i..].starts_with(word.as_bytes()) {
                self.i += word.len();
                Ok(v)
            } else {
                Err(format!("bad literal at {}", self.i))
            }
        }

        fn number(&mut self) -> Result<Value, String> {
            let start = self.i;
            while let Some(b) = self.peek() {
                if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                    self.i += 1;
                } else {
                    break;
                }
            }
            std::str::from_utf8(&self.s[start..self.i])
                .ok()
                .and_then(|t| t.parse().ok())
                .map(Value::Num)
                .ok_or(format!("bad number at {start}"))
        }

        fn string(&mut self) -> Result<String, String> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                match self.peek().ok_or("eof in string")? {
                    b'"' => {
                        self.i += 1;
                        return Ok(out);
                    }
                    b'\\' => {
                        self.i += 1;
                        let esc = self.peek().ok_or("eof after backslash")?;
                        self.i += 1;
                        match esc {
                            b'"' => out.push('"'),
                            b'\\' => out.push('\\'),
                            b'/' => out.push('/'),
                            b'n' => out.push('\n'),
                            b't' => out.push('\t'),
                            b'r' => out.push('\r'),
                            b'b' | b'f' => {}
                            b'u' => {
                                if self.i + 4 > self.s.len() {
                                    return Err("short \\u escape".into());
                                }
                                self.i += 4;
                                out.push('?');
                            }
                            other => return Err(format!("bad escape {:?}", other as char)),
                        }
                    }
                    b => {
                        // Multi-byte UTF-8 passes through byte-wise.
                        out.push(b as char);
                        self.i += 1;
                    }
                }
            }
        }

        fn array(&mut self) -> Result<Value, String> {
            self.expect(b'[')?;
            let mut items = Vec::new();
            self.ws();
            if self.peek() == Some(b']') {
                self.i += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(self.value()?);
                self.ws();
                match self.peek() {
                    Some(b',') => self.i += 1,
                    Some(b']') => {
                        self.i += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(format!("bad array at {}", self.i)),
                }
            }
        }

        fn object(&mut self) -> Result<Value, String> {
            self.expect(b'{')?;
            let mut kv = Vec::new();
            self.ws();
            if self.peek() == Some(b'}') {
                self.i += 1;
                return Ok(Value::Object(kv));
            }
            loop {
                self.ws();
                let key = self.string()?;
                self.ws();
                self.expect(b':')?;
                let val = self.value()?;
                kv.push((key, val));
                self.ws();
                match self.peek() {
                    Some(b',') => self.i += 1,
                    Some(b'}') => {
                        self.i += 1;
                        return Ok(Value::Object(kv));
                    }
                    _ => return Err(format!("bad object at {}", self.i)),
                }
            }
        }
    }
}

/// The Chrome trace export must be a well-formed JSON document whose
/// duration events are balanced (every `B` closed by an `E` on the same
/// thread) with per-thread monotonic timestamps.
#[test]
fn chrome_trace_is_wellformed_and_balanced() {
    use mini_json::{Parser, Value};

    let kernel = find_workload("memset").expect("memset in registry");
    let config = MachineConfig::tm3270();
    let p = profile_kernel(kernel.as_ref(), &config, true).expect("memset profiles");
    let trace = p.chrome_trace.as_deref().expect("trace requested");

    let doc = Parser::parse(trace).expect("well-formed JSON");
    let Some(Value::Array(rows)) = doc.get("traceEvents") else {
        panic!("missing traceEvents array");
    };
    assert!(rows.len() > 100, "expected a real event stream");

    let mut depth: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
    let mut last_ts: std::collections::BTreeMap<u64, f64> = std::collections::BTreeMap::new();
    let mut async_open: std::collections::HashSet<u64> = std::collections::HashSet::new();
    for row in rows {
        let Some(Value::Str(ph)) = row.get("ph") else {
            panic!("row without ph: {row:?}");
        };
        let tid = match row.get("tid") {
            Some(Value::Num(t)) => *t as u64,
            _ => panic!("row without tid: {row:?}"),
        };
        if ph == "M" {
            continue;
        }
        let ts = match row.get("ts") {
            Some(Value::Num(t)) => *t,
            _ => panic!("{ph} row without ts"),
        };
        match ph.as_str() {
            "B" => {
                *depth.entry(tid).or_insert(0) += 1;
                let prev = last_ts.entry(tid).or_insert(f64::NEG_INFINITY);
                assert!(ts >= *prev, "tid {tid}: ts {ts} < {prev}");
                *prev = ts;
            }
            "E" => {
                let d = depth.entry(tid).or_insert(0);
                assert!(*d > 0, "E without open B on tid {tid}");
                *d -= 1;
                let prev = last_ts.entry(tid).or_insert(f64::NEG_INFINITY);
                assert!(ts >= *prev, "tid {tid}: ts {ts} < {prev}");
                *prev = ts;
            }
            "b" => {
                let id = match row.get("id") {
                    Some(Value::Num(n)) => *n as u64,
                    _ => panic!("async row without id"),
                };
                assert!(async_open.insert(id), "duplicate async id {id}");
            }
            "e" => {
                let id = match row.get("id") {
                    Some(Value::Num(n)) => *n as u64,
                    _ => panic!("async row without id"),
                };
                assert!(async_open.remove(&id), "async e without b for id {id}");
            }
            "i" => {}
            other => panic!("unexpected phase {other}"),
        }
    }
    assert!(
        depth.values().all(|d| *d == 0),
        "unclosed B events: {depth:?}"
    );
    assert!(async_open.is_empty(), "unclosed async events");
}

/// Satellite: the crash-trace ring size is configurable via
/// `MachineConfig::trace_ring` and recorded in the `CrashReport`.
#[test]
fn crash_ring_size_is_configurable() {
    let build_livelock = |config: MachineConfig| {
        let mut b = ProgramBuilder::new(config.issue);
        let top = b.bind_here();
        b.jump(top);
        let mut m = Machine::new(config, b.build().unwrap()).unwrap();
        m.set_watchdog(200);
        m
    };

    let mut config = MachineConfig::tm3270();
    assert_eq!(config.trace_ring, tm3270_core::TRACE_RING, "default stays");

    config.trace_ring = 4;
    let report = build_livelock(config.clone())
        .run_with(RunOptions::budget(100_000).with_report())
        .report
        .expect("livelock");
    assert_eq!(report.ring_size, 4);
    assert_eq!(
        report.trace.len(),
        4,
        "ring truncates to the configured size"
    );
    assert!(format!("{report}").contains("ring size 4"));

    config.trace_ring = 0;
    let report = build_livelock(config)
        .run_with(RunOptions::budget(100_000).with_report())
        .report
        .expect("livelock");
    assert_eq!(report.ring_size, 0);
    assert!(report.trace.is_empty(), "ring disabled");
}

/// Fault-injection flips are emitted as `FaultFlip` events matching the
/// injector's own record log, site by site.
#[test]
fn fault_flips_emit_events() {
    let ring = Rc::new(RefCell::new(RingSink::new(64)));
    let mut inj = FaultInjector::new(42);
    inj.attach_sink(SinkHandle::from(ring.clone()));

    let mut buf = vec![0u8; 256];
    inj.flip_bits(FaultSite::DataMemory, &mut buf, 5);
    inj.corrupt_cache_line(&mut buf, 64, 3);

    let events = ring.borrow().events().cloned().collect::<Vec<_>>();
    assert_eq!(events.len(), inj.log().len());
    for (event, record) in events.iter().zip(inj.log()) {
        match event {
            TraceEvent::FaultFlip { site, byte, bit } => {
                assert_eq!(*site, record.site.name());
                assert_eq!(*byte, record.byte);
                assert_eq!(*bit, record.bit);
            }
            other => panic!("unexpected event {other:?}"),
        }
    }
}
