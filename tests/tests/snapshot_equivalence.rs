//! Snapshot/restore equivalence suite: on every (golden workload ×
//! evaluation configuration) cell, a run that is snapshotted at its
//! halfway point and restored into a **fresh** machine — no kernel
//! setup, no warm state — must finish with the exact statistics,
//! register digest and verified memory contents of an uninterrupted
//! run. Any divergence would mean the snapshot missed state the
//! simulation depends on.
//!
//! A second group attacks the container itself: truncations, bit
//! flips, wrong magic and future format versions must all surface as
//! typed [`SnapshotError`]s from [`Machine::restore`] — never a panic,
//! and never a silently half-restored machine being *accepted*.

use tm3270_core::{Machine, MachineConfig, RunOptions, Snapshot, SnapshotError};
use tm3270_kernels::registry;

/// Builds the machine for one cell. `setup` controls whether the
/// kernel's input state is installed — the restore target skips it to
/// prove the snapshot carries everything.
fn build_cell(workload: &tm3270_kernels::Workload, config: &MachineConfig, setup: bool) -> Machine {
    let program = workload.build(&config.issue).unwrap();
    let mut m = Machine::new(config.clone(), program).unwrap();
    if setup {
        workload.kernel().setup(&mut m);
    }
    m
}

/// Every cell: run to completion; re-run to the halfway cycle, snapshot,
/// restore into a fresh un-setup machine, run to completion again; the
/// two completions must be bit-identical.
#[test]
fn a_mid_run_snapshot_restores_to_a_bit_identical_completion() {
    let configs = MachineConfig::evaluation_suite();
    let mut cells = 0usize;
    for workload in registry(1).iter().filter(|w| w.is_golden()) {
        for config in &configs {
            let cell = format!("{} on {}", workload.name(), config.name);

            // The uninterrupted reference run.
            let mut reference = build_cell(workload, config, true);
            let ref_stats = reference
                .run_with(RunOptions::budget(workload.cycle_budget()))
                .into_result()
                .unwrap_or_else(|e| panic!("{cell}: {e}"));
            let ref_digest = reference.reg_digest();

            // The interrupted run: stop halfway (the budget trips as a
            // CycleLimit, leaving the machine intact) and snapshot.
            let mut interrupted = build_cell(workload, config, true);
            let half = ref_stats.cycles / 2;
            let outcome = interrupted.run_with(RunOptions::budget(half)).into_result();
            assert!(
                matches!(outcome, Err(tm3270_core::SimError::CycleLimit { .. })),
                "{cell}: expected the half budget to trip, got {outcome:?}"
            );
            let snapshot = interrupted.snapshot();

            // Restore into a fresh machine with NO kernel setup: if the
            // snapshot missed any state (registers, caches, prefetch,
            // DRAM timing, write ring, flat memory), the continuation
            // diverges.
            let mut restored = build_cell(workload, config, false);
            restored
                .restore(&snapshot)
                .unwrap_or_else(|e| panic!("{cell}: restore failed: {e}"));
            assert_eq!(restored.cycle(), interrupted.cycle(), "{cell}: cycle");
            assert_eq!(restored.pc(), interrupted.pc(), "{cell}: pc");
            let final_stats = restored
                .run_with(RunOptions::budget(workload.cycle_budget()))
                .into_result()
                .unwrap_or_else(|e| panic!("{cell}: continuation failed: {e}"));

            assert_eq!(final_stats, ref_stats, "{cell}: stats diverged");
            assert_eq!(restored.reg_digest(), ref_digest, "{cell}: reg digest");
            restored
                .kernel_verify(workload)
                .unwrap_or_else(|e| panic!("{cell}: verify failed: {e}"));
            cells += 1;
        }
    }
    assert_eq!(cells, 44, "every evaluation cell was exercised");
}

/// Gives tests a verify entry point without re-importing the kernel
/// trait everywhere.
trait KernelVerify {
    fn kernel_verify(&self, workload: &tm3270_kernels::Workload) -> Result<(), String>;
}

impl KernelVerify for Machine {
    fn kernel_verify(&self, workload: &tm3270_kernels::Workload) -> Result<(), String> {
        workload.kernel().verify(self).map_err(|e| e.to_string())
    }
}

/// A snapshot taken at the moment of completion round-trips through hex
/// and restores exactly (pc, cycle, digest).
#[test]
fn snapshots_round_trip_through_hex() {
    let config = &MachineConfig::evaluation_suite()[0];
    let workload = &registry(1)[0];
    let mut m = build_cell(workload, config, true);
    m.run_with(RunOptions::budget(workload.cycle_budget()))
        .into_result()
        .unwrap();
    let snapshot = m.snapshot();
    let back = Snapshot::from_hex(&snapshot.to_hex()).unwrap();
    assert_eq!(snapshot, back);

    let mut restored = build_cell(workload, config, false);
    restored.restore(&back).unwrap();
    assert_eq!(restored.cycle(), m.cycle());
    assert_eq!(restored.pc(), m.pc());
    assert_eq!(restored.reg_digest(), m.reg_digest());
}

/// Truncating a snapshot at any point yields a typed error — never a
/// panic, never an accepted restore.
#[test]
fn every_truncation_is_rejected_with_a_typed_error() {
    let config = &MachineConfig::evaluation_suite()[0];
    let workload = &registry(1)[0];
    let mut m = build_cell(workload, config, true);
    let _ = m.run_with(RunOptions::budget(200)).into_result();
    let bytes = m.snapshot().into_bytes();

    let mut target = build_cell(workload, config, false);
    let cuts = (0..bytes.len()).filter(|&len| len < 128 || len % 97 == 0 || len + 16 > bytes.len());
    for len in cuts {
        let cut = Snapshot::from_bytes(bytes[..len].to_vec());
        let err = target
            .restore(&cut)
            .expect_err("a truncated snapshot must not restore");
        // Every failure is one of the typed variants; rendering it must
        // not panic either.
        let _ = err.to_string();
    }
}

/// Flipping any byte trips the checksum (or an earlier framing check).
#[test]
fn corrupted_snapshots_fail_the_checksum() {
    let config = &MachineConfig::evaluation_suite()[0];
    let workload = &registry(1)[0];
    let mut m = build_cell(workload, config, true);
    let _ = m.run_with(RunOptions::budget(200)).into_result();
    let bytes = m.snapshot().into_bytes();

    let mut target = build_cell(workload, config, false);
    for at in (0..bytes.len()).step_by(211) {
        let mut corrupt = bytes.clone();
        corrupt[at] ^= 0x20;
        let err = target
            .restore(&Snapshot::from_bytes(corrupt))
            .expect_err("a corrupted snapshot must not restore");
        let _ = err.to_string();
    }
}

/// A snapshot from a future format version is refused as a version
/// mismatch — even when its checksum is valid — and wrong magic is
/// refused outright.
#[test]
fn foreign_headers_are_refused() {
    let config = &MachineConfig::evaluation_suite()[0];
    let workload = &registry(1)[0];
    let mut m = build_cell(workload, config, true);
    let _ = m.run_with(RunOptions::budget(200)).into_result();
    let bytes = m.snapshot().into_bytes();
    let mut target = build_cell(workload, config, false);

    // Bump the version and re-seal the checksum so only the version
    // check can object.
    let mut future = bytes.clone();
    future[4] = 2;
    let body_len = future.len() - 8;
    let sum = tm3270_encode::snapshot::snapshot_checksum(&future[..body_len]);
    future[body_len..].copy_from_slice(&sum.to_le_bytes());
    assert_eq!(
        target.restore(&Snapshot::from_bytes(future)),
        Err(SnapshotError::VersionMismatch {
            found: 2,
            expected: 1
        })
    );

    let mut alien = bytes;
    alien[..4].copy_from_slice(b"NOPE");
    assert_eq!(
        target.restore(&Snapshot::from_bytes(alien)),
        Err(SnapshotError::BadMagic)
    );
}
