//! Property tests of the memory hierarchy: under arbitrary access
//! streams, the cached memory system returns exactly the same data as a
//! flat memory (caches change timing, never values), and its statistics
//! stay internally consistent.

use tm3270_fault::SmallRng;
use tm3270_isa::{CacheOp, DataMemory, FlatMemory};
use tm3270_mem::{CacheGeometry, MemConfig, MemorySystem, Region};

#[derive(Debug, Clone)]
enum Access {
    Load { addr: u32, len: usize },
    Store { addr: u32, data: Vec<u8> },
    CacheCtl { op: CacheOp, addr: u32 },
}

const CACHE_OPS: &[CacheOp] = &[
    CacheOp::Allocate,
    CacheOp::Prefetch,
    CacheOp::Invalidate,
    CacheOp::Flush,
];

fn random_access(rng: &mut SmallRng) -> Access {
    // A 64 KiB window with a small cache guarantees heavy eviction.
    let addr = rng.below(65_000) as u32;
    match rng.below(9) {
        0..=3 => Access::Load {
            addr,
            len: 1 + rng.index(8),
        },
        4..=7 => {
            let mut data = vec![0u8; 1 + rng.index(8)];
            rng.fill_bytes(&mut data);
            Access::Store { addr, data }
        }
        _ => Access::CacheCtl {
            op: CACHE_OPS[rng.index(CACHE_OPS.len())],
            addr,
        },
    }
}

fn tiny_config() -> MemConfig {
    let mut cfg = MemConfig::tm3270();
    cfg.dcache = CacheGeometry {
        size: 2048,
        line: 64,
        ways: 2,
    };
    cfg.mem_size = 1 << 17;
    cfg
}

#[test]
fn cached_memory_equals_flat_memory() {
    let mut rng = SmallRng::new(0x3e3_0001);
    for case in 0..128 {
        let accesses: Vec<Access> = (0..1 + rng.index(199))
            .map(|_| random_access(&mut rng))
            .collect();
        let prefetch_region = rng.chance(1, 2);
        // Careful: `Invalidate` discards dirty data in a real cache. Our
        // model keeps functional data in the flat store, so invalidate
        // only affects timing — data equality must STILL hold.
        let cfg = tiny_config();
        let mut sys = MemorySystem::new(cfg.clone());
        let mut flat = FlatMemory::new(cfg.mem_size);
        if prefetch_region {
            sys.set_prefetch_region(
                0,
                Region {
                    start: 0,
                    end: 60_000,
                    stride: 64,
                },
            );
        }
        let mut cycle = 0u64;
        for (i, access) in accesses.iter().enumerate() {
            sys.begin_instr(cycle);
            match access {
                Access::Load { addr, len } => {
                    let mut a = vec![0u8; *len];
                    let mut b = vec![0u8; *len];
                    sys.load_bytes(*addr, &mut a);
                    flat.load_bytes(*addr, &mut b);
                    assert_eq!(a, b, "case {case}: load {i} at {addr:#x}");
                }
                Access::Store { addr, data } => {
                    sys.store_bytes(*addr, data);
                    flat.store_bytes(*addr, data);
                }
                Access::CacheCtl { op, addr } => {
                    sys.cache_op(*op, *addr);
                }
            }
            cycle += 1 + sys.take_stall();
        }
        // Final memory images agree byte for byte.
        let mut a = vec![0u8; 65_536];
        let mut b = vec![0u8; 65_536];
        sys.begin_instr(cycle);
        sys.load_bytes(0, &mut a);
        flat.load_bytes(0, &mut b);
        assert_eq!(a, b, "case {case}: final image");
    }
}

#[test]
fn statistics_stay_consistent() {
    let mut rng = SmallRng::new(0x3e3_0002);
    for _ in 0..128 {
        let accesses: Vec<Access> = (0..1 + rng.index(149))
            .map(|_| random_access(&mut rng))
            .collect();
        let cfg = tiny_config();
        let mut sys = MemorySystem::new(cfg);
        let mut cycle = 0u64;
        let mut loads = 0u64;
        let mut stores = 0u64;
        for access in &accesses {
            sys.begin_instr(cycle);
            match access {
                Access::Load { addr, len } => {
                    let mut buf = vec![0u8; *len];
                    sys.load_bytes(*addr, &mut buf);
                    loads += 1;
                }
                Access::Store { addr, data } => {
                    sys.store_bytes(*addr, data);
                    stores += 1;
                }
                Access::CacheCtl { op, addr } => sys.cache_op(*op, *addr),
            }
            cycle += 1 + sys.take_stall();
        }
        let s = sys.stats();
        assert_eq!(s.mem.loads, loads);
        assert_eq!(s.mem.stores, stores);
        // Lookup accounting: hits + partial hits + misses covers at least
        // one lookup per access (non-aligned accesses produce two).
        let lookups = s.dcache.hits + s.dcache.partial_hits + s.dcache.misses;
        assert!(lookups >= loads + stores);
        assert!(lookups <= 2 * (loads + stores) + accesses.len() as u64);
        // Copy-back bytes only move when lines were dirtied.
        if stores == 0 {
            assert_eq!(s.dcache.copyback_bytes, 0);
        }
        // The DRAM channel never reports more demand transfers than
        // total transfers.
        assert!(s.dram.demand_transfers <= s.dram.transfers);
    }
}

#[test]
fn lru_capacity_bound_holds() {
    // Touch n distinct lines cyclically: once the cache holds them
    // all (n <= capacity), a second pass has zero misses.
    for n_lines in 1u32..64 {
        let cfg = tiny_config(); // 2 KiB, 64-byte lines -> 32 lines
        let capacity_lines = cfg.dcache.size / cfg.dcache.line;
        let mut sys = MemorySystem::new(cfg);
        let mut cycle = 0u64;
        for pass in 0..2 {
            let miss_before = sys.stats().dcache.misses;
            for i in 0..n_lines {
                sys.begin_instr(cycle);
                let mut buf = [0u8; 4];
                sys.load_bytes(i * 64, &mut buf);
                cycle += 1 + sys.take_stall();
            }
            let misses = sys.stats().dcache.misses - miss_before;
            if pass == 1 && n_lines <= capacity_lines / 2 {
                // Half the capacity always fits regardless of set mapping.
                assert_eq!(misses, 0, "warm pass of {n_lines} lines missed");
            }
        }
    }
}
