//! Property tests of the memory hierarchy: under arbitrary access
//! streams, the cached memory system returns exactly the same data as a
//! flat memory (caches change timing, never values), and its statistics
//! stay internally consistent.

use proptest::prelude::*;
use tm3270_isa::{CacheOp, DataMemory, FlatMemory};
use tm3270_mem::{CacheGeometry, MemConfig, MemorySystem, Region};

#[derive(Debug, Clone)]
enum Access {
    Load { addr: u32, len: usize },
    Store { addr: u32, data: Vec<u8> },
    CacheCtl { op: CacheOp, addr: u32 },
}

fn access_strategy() -> impl Strategy<Value = Access> {
    // A 64 KiB window with a small cache guarantees heavy eviction.
    let addr = 0u32..65_000;
    prop_oneof![
        4 => (addr.clone(), 1usize..9).prop_map(|(addr, len)| Access::Load { addr, len }),
        4 => (addr.clone(), prop::collection::vec(any::<u8>(), 1..9))
            .prop_map(|(addr, data)| Access::Store { addr, data }),
        1 => (
            prop_oneof![
                Just(CacheOp::Allocate),
                Just(CacheOp::Prefetch),
                Just(CacheOp::Invalidate),
                Just(CacheOp::Flush)
            ],
            addr
        )
            .prop_map(|(op, addr)| Access::CacheCtl { op, addr }),
    ]
}

fn tiny_config() -> MemConfig {
    let mut cfg = MemConfig::tm3270();
    cfg.dcache = CacheGeometry {
        size: 2048,
        line: 64,
        ways: 2,
    };
    cfg.mem_size = 1 << 17;
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn cached_memory_equals_flat_memory(
        accesses in prop::collection::vec(access_strategy(), 1..200),
        prefetch_region in any::<bool>(),
    ) {
        // Careful: `Invalidate` discards dirty data in a real cache. Our
        // model keeps functional data in the flat store, so invalidate
        // only affects timing — data equality must STILL hold.
        let cfg = tiny_config();
        let mut sys = MemorySystem::new(cfg.clone());
        let mut flat = FlatMemory::new(cfg.mem_size);
        if prefetch_region {
            sys.set_prefetch_region(0, Region { start: 0, end: 60_000, stride: 64 });
        }
        let mut cycle = 0u64;
        for (i, access) in accesses.iter().enumerate() {
            sys.begin_instr(cycle);
            match access {
                Access::Load { addr, len } => {
                    let mut a = vec![0u8; *len];
                    let mut b = vec![0u8; *len];
                    sys.load_bytes(*addr, &mut a);
                    flat.load_bytes(*addr, &mut b);
                    prop_assert_eq!(a, b, "load {} at {:#x}", i, addr);
                }
                Access::Store { addr, data } => {
                    sys.store_bytes(*addr, data);
                    flat.store_bytes(*addr, data);
                }
                Access::CacheCtl { op, addr } => {
                    sys.cache_op(*op, *addr);
                }
            }
            cycle += 1 + sys.take_stall();
        }
        // Final memory images agree byte for byte.
        let mut a = vec![0u8; 65_536];
        let mut b = vec![0u8; 65_536];
        sys.begin_instr(cycle);
        sys.load_bytes(0, &mut a);
        flat.load_bytes(0, &mut b);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn statistics_stay_consistent(
        accesses in prop::collection::vec(access_strategy(), 1..150),
    ) {
        let cfg = tiny_config();
        let mut sys = MemorySystem::new(cfg);
        let mut cycle = 0u64;
        let mut loads = 0u64;
        let mut stores = 0u64;
        for access in &accesses {
            sys.begin_instr(cycle);
            match access {
                Access::Load { addr, len } => {
                    let mut buf = vec![0u8; *len];
                    sys.load_bytes(*addr, &mut buf);
                    loads += 1;
                }
                Access::Store { addr, data } => {
                    sys.store_bytes(*addr, data);
                    stores += 1;
                }
                Access::CacheCtl { op, addr } => sys.cache_op(*op, *addr),
            }
            cycle += 1 + sys.take_stall();
        }
        let s = sys.stats();
        prop_assert_eq!(s.mem.loads, loads);
        prop_assert_eq!(s.mem.stores, stores);
        // Lookup accounting: hits + partial hits + misses covers at least
        // one lookup per access (non-aligned accesses produce two).
        let lookups = s.dcache.hits + s.dcache.partial_hits + s.dcache.misses;
        prop_assert!(lookups >= loads + stores);
        prop_assert!(lookups <= 2 * (loads + stores) + accesses.len() as u64);
        // Copy-back bytes only move when lines were dirtied.
        if stores == 0 {
            prop_assert_eq!(s.dcache.copyback_bytes, 0);
        }
        // The DRAM channel never reports more demand transfers than
        // total transfers.
        prop_assert!(s.dram.demand_transfers <= s.dram.transfers);
    }

    #[test]
    fn lru_capacity_bound_holds(n_lines in 1u32..64) {
        // Touch n distinct lines cyclically: once the cache holds them
        // all (n <= capacity), a second pass has zero misses.
        let cfg = tiny_config(); // 2 KiB, 64-byte lines -> 32 lines
        let capacity_lines = cfg.dcache.size / cfg.dcache.line;
        let mut sys = MemorySystem::new(cfg);
        let mut cycle = 0u64;
        for pass in 0..2 {
            let miss_before = sys.stats().dcache.misses;
            for i in 0..n_lines {
                sys.begin_instr(cycle);
                let mut buf = [0u8; 4];
                sys.load_bytes(i * 64, &mut buf);
                cycle += 1 + sys.take_stall();
            }
            let misses = sys.stats().dcache.misses - miss_before;
            if pass == 1 && n_lines <= capacity_lines / 2 {
                // Half the capacity always fits regardless of set mapping.
                prop_assert_eq!(misses, 0, "warm pass of {} lines missed", n_lines);
            }
        }
    }
}
