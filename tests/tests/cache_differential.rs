//! Differential test of the bitmask `CacheArray` against a straight
//! `Vec<bool>` reference implementation.
//!
//! The production array replaced per-line `Vec<bool>` byte validity
//! with a fixed bitmask, added a last-line memo and an MRU-first way
//! probe, and hoisted the set/tag divides into shift/mask fields — all
//! of which must be *invisible*: same `Lookup` results, same `Victim`s,
//! same `CacheStats` after every operation. This test drives both
//! implementations through ~10k seeded random mixed operations on each
//! of the four paper cache geometries and asserts exact agreement at
//! every step. The reference below is a line-for-line transliteration
//! of the pre-bitmask `CacheArray` (commit 935c72a).

use tm3270_fault::SmallRng;
use tm3270_mem::{CacheArray, CacheGeometry, CacheStats, Lookup, Victim};

/// Reference cache model: the original `Vec<bool>`-validity,
/// linear-scan implementation.
struct ShadowCache {
    geometry: CacheGeometry,
    lines: Vec<ShadowLine>,
    tick: u64,
    stats: CacheStats,
}

#[derive(Clone)]
struct ShadowLine {
    tag: u32,
    valid: bool,
    dirty: bool,
    valid_bytes: Vec<bool>,
    lru: u64,
    prefetched: bool,
}

impl ShadowCache {
    fn new(geometry: CacheGeometry) -> ShadowCache {
        let n = (geometry.sets() * geometry.ways) as usize;
        ShadowCache {
            geometry,
            lines: vec![
                ShadowLine {
                    tag: 0,
                    valid: false,
                    dirty: false,
                    valid_bytes: vec![false; geometry.line as usize],
                    lru: 0,
                    prefetched: false,
                };
                n
            ],
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    fn set_range(&self, addr: u32) -> std::ops::Range<usize> {
        let set = ((addr / self.geometry.line) % self.geometry.sets()) as usize;
        let ways = self.geometry.ways as usize;
        set * ways..(set + 1) * ways
    }

    fn tag_of(&self, addr: u32) -> u32 {
        addr / self.geometry.line / self.geometry.sets()
    }

    fn find(&self, addr: u32) -> Option<usize> {
        let tag = self.tag_of(addr);
        self.set_range(addr)
            .find(|&i| self.lines[i].valid && self.lines[i].tag == tag)
    }

    fn contains(&self, addr: u32) -> bool {
        self.find(addr).is_some()
    }

    fn lookup(&mut self, addr: u32, len: u32) -> Lookup {
        self.tick += 1;
        match self.find(addr) {
            Some(i) => {
                self.lines[i].lru = self.tick;
                if self.lines[i].prefetched {
                    self.lines[i].prefetched = false;
                    self.stats.prefetch_hits += 1;
                }
                let off = (addr % self.geometry.line) as usize;
                let all_valid = self.lines[i].valid_bytes[off..off + len as usize]
                    .iter()
                    .all(|&v| v);
                if all_valid {
                    self.stats.hits += 1;
                    Lookup::Hit
                } else {
                    self.stats.partial_hits += 1;
                    Lookup::PartialHit
                }
            }
            None => {
                self.stats.misses += 1;
                Lookup::Miss
            }
        }
    }

    fn evict_slot(&mut self, addr: u32) -> (usize, Option<Victim>) {
        let range = self.set_range(addr);
        let slot = range
            .clone()
            .find(|&i| !self.lines[i].valid)
            .unwrap_or_else(|| {
                range
                    .min_by_key(|&i| self.lines[i].lru)
                    .expect("non-empty set")
            });
        let victim = if self.lines[slot].valid && self.lines[slot].dirty {
            let vb = self.lines[slot].valid_bytes.iter().filter(|&&v| v).count() as u32;
            self.stats.copybacks += 1;
            self.stats.copyback_bytes += u64::from(vb);
            Some(Victim {
                base: (self.lines[slot].tag * self.geometry.sets()
                    + (addr / self.geometry.line) % self.geometry.sets())
                    * self.geometry.line,
                copyback_bytes: vb,
            })
        } else {
            None
        };
        (slot, victim)
    }

    fn fill(&mut self, addr: u32, prefetched: bool) -> Option<Victim> {
        if let Some(i) = self.find(addr) {
            self.lines[i].valid_bytes.fill(true);
            self.stats.refill_merges += 1;
            return None;
        }
        let tag = self.tag_of(addr);
        let (slot, victim) = self.evict_slot(addr);
        self.tick += 1;
        let line = &mut self.lines[slot];
        line.tag = tag;
        line.valid = true;
        line.dirty = false;
        line.valid_bytes.fill(true);
        line.lru = self.tick;
        line.prefetched = prefetched;
        self.stats.fills += 1;
        victim
    }

    fn allocate(&mut self, addr: u32) -> Option<Victim> {
        if self.find(addr).is_some() {
            return None;
        }
        let tag = self.tag_of(addr);
        let (slot, victim) = self.evict_slot(addr);
        self.tick += 1;
        let line = &mut self.lines[slot];
        line.tag = tag;
        line.valid = true;
        line.dirty = false;
        line.valid_bytes.fill(false);
        line.lru = self.tick;
        line.prefetched = false;
        self.stats.allocations += 1;
        victim
    }

    fn write(&mut self, addr: u32, len: u32) {
        let i = self.find(addr).expect("store into absent line");
        self.tick += 1;
        self.lines[i].lru = self.tick;
        self.lines[i].dirty = true;
        if self.lines[i].prefetched {
            self.lines[i].prefetched = false;
            self.stats.prefetch_hits += 1;
        }
        let off = (addr % self.geometry.line) as usize;
        for v in &mut self.lines[i].valid_bytes[off..off + len as usize] {
            *v = true;
        }
    }

    fn invalidate(&mut self, addr: u32) -> bool {
        if let Some(i) = self.find(addr) {
            self.lines[i].valid = false;
            self.lines[i].dirty = false;
            true
        } else {
            false
        }
    }

    fn flush(&mut self, addr: u32) -> u32 {
        if let Some(i) = self.find(addr) {
            let bytes = if self.lines[i].dirty {
                self.lines[i].valid_bytes.iter().filter(|&&v| v).count() as u32
            } else {
                0
            };
            if bytes > 0 {
                self.stats.copybacks += 1;
                self.stats.copyback_bytes += u64::from(bytes);
            }
            self.lines[i].valid = false;
            self.lines[i].dirty = false;
            bytes
        } else {
            0
        }
    }
}

/// The four paper geometries (Tables 1 and 6): 128-byte and 64-byte
/// lines, 4- and 8-way, 16 KB to 128 KB.
fn paper_geometries() -> [CacheGeometry; 4] {
    [
        CacheGeometry::tm3270_dcache(),
        CacheGeometry::tm3270_icache(),
        CacheGeometry::tm3260_dcache(),
        CacheGeometry::tm3260_icache(),
    ]
}

/// One random line-bounded (addr, len) pair. The address window spans
/// 4x the cache capacity so sets see heavy eviction, with occasional
/// far-away and near-wraparound addresses to exercise tag width.
fn random_access(rng: &mut SmallRng, geom: CacheGeometry) -> (u32, u32) {
    let addr = match rng.below(16) {
        0 => 0xffff_0000u32.wrapping_add(rng.below(u64::from(geom.size)) as u32),
        1 => rng.next_u32(),
        _ => (rng.below(u64::from(geom.size) * 4)) as u32,
    };
    let line = geom.line;
    let max_len = (line - (addr % line)).min(16);
    let len = 1 + rng.below(u64::from(max_len)) as u32;
    (addr, len)
}

#[test]
fn bitmask_cache_matches_vec_bool_reference() {
    for geom in paper_geometries() {
        let mut rng = SmallRng::new(0xcace_0000 | u64::from(geom.line));
        let mut fast = CacheArray::new(geom);
        let mut shadow = ShadowCache::new(geom);
        let mut op_counts = [0u64; 7];
        for step in 0..10_000u32 {
            let ctx = |what: &str, step: u32| {
                format!("{what} diverged at step {step} (line {}b)", geom.line)
            };
            let op = rng.below(16);
            op_counts[match op {
                0..=5 => 0,
                6..=9 => 1,
                10..=11 => 2,
                12 => 3,
                13 => 4,
                14 => 5,
                _ => 6,
            } as usize] += 1;
            match op {
                // Lookups dominate, as they do on the real access path.
                0..=5 => {
                    let (addr, len) = random_access(&mut rng, geom);
                    assert_eq!(
                        fast.lookup(addr, len),
                        shadow.lookup(addr, len),
                        "{}",
                        ctx("lookup", step)
                    );
                }
                // Writes must target a present line: allocate first when
                // absent (what the write-miss policies do).
                6..=9 => {
                    let (addr, len) = random_access(&mut rng, geom);
                    if !shadow.contains(addr) {
                        assert_eq!(
                            fast.allocate(addr),
                            shadow.allocate(addr),
                            "{}",
                            ctx("pre-write allocate", step)
                        );
                    }
                    fast.write(addr, len);
                    shadow.write(addr, len);
                }
                10..=11 => {
                    let (addr, _) = random_access(&mut rng, geom);
                    let prefetched = rng.chance(1, 4);
                    assert_eq!(
                        fast.fill(addr, prefetched),
                        shadow.fill(addr, prefetched),
                        "{}",
                        ctx("fill", step)
                    );
                }
                12 => {
                    let (addr, _) = random_access(&mut rng, geom);
                    assert_eq!(
                        fast.allocate(addr),
                        shadow.allocate(addr),
                        "{}",
                        ctx("allocate", step)
                    );
                }
                13 => {
                    let (addr, _) = random_access(&mut rng, geom);
                    assert_eq!(
                        fast.flush(addr),
                        shadow.flush(addr),
                        "{}",
                        ctx("flush", step)
                    );
                }
                14 => {
                    let (addr, _) = random_access(&mut rng, geom);
                    assert_eq!(
                        fast.invalidate(addr),
                        shadow.invalidate(addr),
                        "{}",
                        ctx("invalidate", step)
                    );
                }
                _ => {
                    let (addr, _) = random_access(&mut rng, geom);
                    assert_eq!(
                        fast.contains(addr),
                        shadow.contains(addr),
                        "{}",
                        ctx("contains", step)
                    );
                }
            }
            assert_eq!(
                fast.stats(),
                shadow.stats,
                "stats diverged at step {step} (line {}b)",
                geom.line
            );
        }
        // Every operation kind actually ran, and the streams were not
        // trivially hit- or miss-only.
        assert!(op_counts.iter().all(|&n| n > 0), "op mix: {op_counts:?}");
        let s = fast.stats();
        assert!(s.hits > 0 && s.misses > 0 && s.partial_hits > 0, "{s:?}");
        assert!(s.fills > 0 && s.allocations > 0 && s.copybacks > 0, "{s:?}");
        assert!(s.refill_merges > 0, "merge path exercised: {s:?}");
    }
}
