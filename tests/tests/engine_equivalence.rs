//! Engine-equivalence differential suite: pins the exact architectural
//! outcome of every golden Table 5 workload on every evaluation
//! configuration to constants captured from the pre-predecode engine
//! (commit 49881a1, the last `Vec`-of-pending-writes implementation).
//!
//! The predecoded-issue-plan / write-ring engine must be *bit-identical*
//! to its predecessor: same cycle counts, same stall decomposition, same
//! memory-system traffic, same final register file, and the same golden
//! data checksums. Any divergence — even a single cycle — is a
//! determinism regression, not a tolerance question, so every field is
//! asserted with `assert_eq!`.
//!
//! A watchdog golden pins the fault path (livelock detection fires on
//! the same cycle with the same crash report), and a fault-campaign
//! golden pins the full 200-run seed-1 outcome histogram.

use tm3270_asm::ProgramBuilder;
use tm3270_bench::campaign::{run_campaign, CampaignOptions};
use tm3270_core::{Machine, MachineConfig, RunOptions};
use tm3270_kernels::registry;

/// One pinned (workload, configuration) cell.
struct Golden {
    kernel: &'static str,
    config: &'static str,
    cycles: u64,
    instrs: u64,
    ops: u64,
    exec_ops: u64,
    branches: u64,
    taken_branches: u64,
    ifetch_stall: u64,
    data_stall: u64,
    dcache_misses: u64,
    dram_bytes: u64,
    reg_digest: u64,
    checksum: u64,
}

const GOLDENS: &[Golden] = &[
    Golden {
        kernel: "memset",
        config: "TM3260 (config A)",
        cycles: 17388,
        instrs: 8195,
        ops: 18437,
        exec_ops: 18436,
        branches: 512,
        taken_branches: 511,
        ifetch_stall: 196,
        data_stall: 8997,
        dcache_misses: 1024,
        dram_bytes: 114944,
        reg_digest: 0x44d37e9af1d7a8e9,
        checksum: 0xf882d7dd15654639,
    },
    Golden {
        kernel: "memset",
        config: "TM3270 core, 16KB D$ @ 240 MHz (config B)",
        cycles: 9252,
        instrs: 8195,
        ops: 18437,
        exec_ops: 18436,
        branches: 512,
        taken_branches: 511,
        ifetch_stall: 112,
        data_stall: 945,
        dcache_misses: 512,
        dram_bytes: 49408,
        reg_digest: 0x44d37e9af1d7a8e9,
        checksum: 0x36efebb73a92c138,
    },
    Golden {
        kernel: "memset",
        config: "TM3270 core, 16KB D$ @ 350 MHz (config C)",
        cycles: 12681,
        instrs: 8195,
        ops: 18437,
        exec_ops: 18436,
        branches: 512,
        taken_branches: 511,
        ifetch_stall: 162,
        data_stall: 4324,
        dcache_misses: 512,
        dram_bytes: 49408,
        reg_digest: 0x44d37e9af1d7a8e9,
        checksum: 0x36efebb73a92c138,
    },
    Golden {
        kernel: "memset",
        config: "TM3270 (config D)",
        cycles: 8357,
        instrs: 8195,
        ops: 18437,
        exec_ops: 18436,
        branches: 512,
        taken_branches: 511,
        ifetch_stall: 162,
        data_stall: 0,
        dcache_misses: 512,
        dram_bytes: 256,
        reg_digest: 0x44d37e9af1d7a8e9,
        checksum: 0x36efebb73a92c138,
    },
    Golden {
        kernel: "memcpy",
        config: "TM3260 (config A)",
        cycles: 73781,
        instrs: 16385,
        ops: 37891,
        exec_ops: 37890,
        branches: 1024,
        taken_branches: 1023,
        ifetch_stall: 193,
        data_stall: 57203,
        dcache_misses: 2048,
        dram_bytes: 188672,
        reg_digest: 0x5b593e3b03d97db9,
        checksum: 0xb155b4d23290ef97,
    },
    Golden {
        kernel: "memcpy",
        config: "TM3270 core, 16KB D$ @ 240 MHz (config B)",
        cycles: 49265,
        instrs: 20481,
        ops: 37891,
        exec_ops: 37890,
        branches: 1024,
        taken_branches: 1023,
        ifetch_stall: 112,
        data_stall: 28672,
        dcache_misses: 1024,
        dram_bytes: 123136,
        reg_digest: 0x5b593e3b03d97db9,
        checksum: 0x4c40bcd81286916b,
    },
    Golden {
        kernel: "memcpy",
        config: "TM3270 core, 16KB D$ @ 350 MHz (config C)",
        cycles: 62115,
        instrs: 20481,
        ops: 37891,
        exec_ops: 37890,
        branches: 1024,
        taken_branches: 1023,
        ifetch_stall: 162,
        data_stall: 41472,
        dcache_misses: 1024,
        dram_bytes: 123136,
        reg_digest: 0x5b593e3b03d97db9,
        checksum: 0x4c40bcd81286916b,
    },
    Golden {
        kernel: "memcpy",
        config: "TM3270 (config D)",
        cycles: 62115,
        instrs: 20481,
        ops: 37891,
        exec_ops: 37890,
        branches: 1024,
        taken_branches: 1023,
        ifetch_stall: 162,
        data_stall: 41472,
        dcache_misses: 1024,
        dram_bytes: 65792,
        reg_digest: 0x5b593e3b03d97db9,
        checksum: 0x4c40bcd81286916b,
    },
    Golden {
        kernel: "filter",
        config: "TM3260 (config A)",
        cycles: 327174,
        instrs: 271560,
        ops: 866803,
        exec_ops: 866564,
        branches: 9520,
        taken_branches: 9281,
        ifetch_stall: 414,
        data_stall: 55200,
        dcache_misses: 2390,
        dram_bytes: 221824,
        reg_digest: 0xdec17c540d6c711c,
        checksum: 0xb2c457e098126540,
    },
    Golden {
        kernel: "filter",
        config: "TM3270 core, 16KB D$ @ 240 MHz (config B)",
        cycles: 324956,
        instrs: 291076,
        ops: 866803,
        exec_ops: 866564,
        branches: 9520,
        taken_branches: 9281,
        ifetch_stall: 280,
        data_stall: 33600,
        dcache_misses: 1196,
        dram_bytes: 144020,
        reg_digest: 0xdec17c540d6c711c,
        checksum: 0x314f7ee9c785f44f,
    },
    Golden {
        kernel: "filter",
        config: "TM3270 core, 16KB D$ @ 350 MHz (config C)",
        cycles: 340081,
        instrs: 291076,
        ops: 866803,
        exec_ops: 866564,
        branches: 9520,
        taken_branches: 9281,
        ifetch_stall: 405,
        data_stall: 48600,
        dcache_misses: 1196,
        dram_bytes: 144020,
        reg_digest: 0xdec17c540d6c711c,
        checksum: 0x314f7ee9c785f44f,
    },
    Golden {
        kernel: "filter",
        config: "TM3270 (config D)",
        cycles: 340081,
        instrs: 291076,
        ops: 866803,
        exec_ops: 866564,
        branches: 9520,
        taken_branches: 9281,
        ifetch_stall: 405,
        data_stall: 48600,
        dcache_misses: 1196,
        dram_bytes: 88108,
        reg_digest: 0xdec17c540d6c711c,
        checksum: 0x314f7ee9c785f44f,
    },
    Golden {
        kernel: "rgb2yuv",
        config: "TM3260 (config A)",
        cycles: 805401,
        instrs: 556802,
        ops: 1593608,
        exec_ops: 1593607,
        branches: 19200,
        taken_branches: 19199,
        ifetch_stall: 322,
        data_stall: 248277,
        dcache_misses: 8400,
        dram_bytes: 761920,
        reg_digest: 0xa2f026013c160576,
        checksum: 0x3e49060c3ed0f21f,
    },
    Golden {
        kernel: "rgb2yuv",
        config: "TM3270 core, 16KB D$ @ 240 MHz (config B)",
        cycles: 710626,
        instrs: 576002,
        ops: 1593608,
        exec_ops: 1593607,
        branches: 19200,
        taken_branches: 19199,
        ifetch_stall: 224,
        data_stall: 134400,
        dcache_misses: 4200,
        dram_bytes: 530048,
        reg_digest: 0xa2f026013c160576,
        checksum: 0x02a48ea695ccf386,
    },
    Golden {
        kernel: "rgb2yuv",
        config: "TM3270 core, 16KB D$ @ 350 MHz (config C)",
        cycles: 770726,
        instrs: 576002,
        ops: 1593608,
        exec_ops: 1593607,
        branches: 19200,
        taken_branches: 19199,
        ifetch_stall: 324,
        data_stall: 194400,
        dcache_misses: 4200,
        dram_bytes: 530048,
        reg_digest: 0xa2f026013c160576,
        checksum: 0x02a48ea695ccf386,
    },
    Golden {
        kernel: "rgb2yuv",
        config: "TM3270 (config D)",
        cycles: 770726,
        instrs: 576002,
        ops: 1593608,
        exec_ops: 1593607,
        branches: 19200,
        taken_branches: 19199,
        ifetch_stall: 324,
        data_stall: 194400,
        dcache_misses: 4200,
        dram_bytes: 472704,
        reg_digest: 0xa2f026013c160576,
        checksum: 0x02a48ea695ccf386,
    },
    Golden {
        kernel: "rgb2cmyk",
        config: "TM3260 (config A)",
        cycles: 664035,
        instrs: 384002,
        ops: 1228808,
        exec_ops: 1228807,
        branches: 19200,
        taken_branches: 19199,
        ifetch_stall: 238,
        data_stall: 279795,
        dcache_misses: 9600,
        dram_bytes: 913728,
        reg_digest: 0x4365d0ece8a80885,
        checksum: 0x01d05b346ee2bd2d,
    },
    Golden {
        kernel: "rgb2cmyk",
        config: "TM3270 core, 16KB D$ @ 240 MHz (config B)",
        cycles: 568358,
        instrs: 403202,
        ops: 1228808,
        exec_ops: 1228807,
        branches: 19200,
        taken_branches: 19199,
        ifetch_stall: 168,
        data_stall: 164988,
        dcache_misses: 7649,
        dram_bytes: 674232,
        reg_digest: 0x4365d0ece8a80885,
        checksum: 0xfaff6e96c52c669d,
    },
    Golden {
        kernel: "rgb2cmyk",
        config: "TM3270 core, 16KB D$ @ 350 MHz (config C)",
        cycles: 642417,
        instrs: 403202,
        ops: 1228808,
        exec_ops: 1228807,
        branches: 19200,
        taken_branches: 19199,
        ifetch_stall: 243,
        data_stall: 238972,
        dcache_misses: 7649,
        dram_bytes: 674232,
        reg_digest: 0x4365d0ece8a80885,
        checksum: 0xfaff6e96c52c669d,
    },
    Golden {
        kernel: "rgb2cmyk",
        config: "TM3270 (config D)",
        cycles: 603751,
        instrs: 403202,
        ops: 1228808,
        exec_ops: 1228807,
        branches: 19200,
        taken_branches: 19199,
        ifetch_stall: 243,
        data_stall: 200306,
        dcache_misses: 5178,
        dram_bytes: 558832,
        reg_digest: 0x4365d0ece8a80885,
        checksum: 0xfaff6e96c52c669d,
    },
    Golden {
        kernel: "rgb2yiq",
        config: "TM3260 (config A)",
        cycles: 736456,
        instrs: 480002,
        ops: 1209608,
        exec_ops: 1209607,
        branches: 19200,
        taken_branches: 19199,
        ifetch_stall: 292,
        data_stall: 256162,
        dcache_misses: 10800,
        dram_bytes: 1065664,
        reg_digest: 0xda912157de8f5495,
        checksum: 0xf1e26723dccdf038,
    },
    Golden {
        kernel: "rgb2yiq",
        config: "TM3270 core, 16KB D$ @ 240 MHz (config B)",
        cycles: 633770,
        instrs: 499202,
        ops: 1209608,
        exec_ops: 1209607,
        branches: 19200,
        taken_branches: 19199,
        ifetch_stall: 168,
        data_stall: 134400,
        dcache_misses: 5400,
        dram_bytes: 682624,
        reg_digest: 0xda912157de8f5495,
        checksum: 0x354852c665a374ec,
    },
    Golden {
        kernel: "rgb2yiq",
        config: "TM3270 core, 16KB D$ @ 350 MHz (config C)",
        cycles: 693845,
        instrs: 499202,
        ops: 1209608,
        exec_ops: 1209607,
        branches: 19200,
        taken_branches: 19199,
        ifetch_stall: 243,
        data_stall: 194400,
        dcache_misses: 5400,
        dram_bytes: 682624,
        reg_digest: 0xda912157de8f5495,
        checksum: 0x354852c665a374ec,
    },
    Golden {
        kernel: "rgb2yiq",
        config: "TM3270 (config D)",
        cycles: 693845,
        instrs: 499202,
        ops: 1209608,
        exec_ops: 1209607,
        branches: 19200,
        taken_branches: 19199,
        ifetch_stall: 243,
        data_stall: 194400,
        dcache_misses: 5400,
        dram_bytes: 614656,
        reg_digest: 0xda912157de8f5495,
        checksum: 0x354852c665a374ec,
    },
    Golden {
        kernel: "mpeg2_a",
        config: "TM3260 (config A)",
        cycles: 1891565,
        instrs: 268839,
        ops: 866968,
        exec_ops: 866937,
        branches: 1380,
        taken_branches: 1349,
        ifetch_stall: 2604,
        data_stall: 1620122,
        dcache_misses: 39852,
        dram_bytes: 2919424,
        reg_digest: 0x5713df86bead514b,
        checksum: 0xc044db2712e1ebd2,
    },
    Golden {
        kernel: "mpeg2_a",
        config: "TM3270 core, 16KB D$ @ 240 MHz (config B)",
        cycles: 1985628,
        instrs: 275649,
        ops: 866968,
        exec_ops: 866937,
        branches: 1380,
        taken_branches: 1349,
        ifetch_stall: 1512,
        data_stall: 1708467,
        dcache_misses: 33151,
        dram_bytes: 4186880,
        reg_digest: 0x5713df86bead514b,
        checksum: 0xdf2339d0d3d0da7e,
    },
    Golden {
        kernel: "mpeg2_a",
        config: "TM3270 core, 16KB D$ @ 350 MHz (config C)",
        cycles: 2758524,
        instrs: 275649,
        ops: 866968,
        exec_ops: 866937,
        branches: 1380,
        taken_branches: 1349,
        ifetch_stall: 2187,
        data_stall: 2480688,
        dcache_misses: 33151,
        dram_bytes: 4186880,
        reg_digest: 0x5713df86bead514b,
        checksum: 0xdf2339d0d3d0da7e,
    },
    Golden {
        kernel: "mpeg2_a",
        config: "TM3270 (config D)",
        cycles: 731889,
        instrs: 275649,
        ops: 866968,
        exec_ops: 866937,
        branches: 1380,
        taken_branches: 1349,
        ifetch_stall: 2187,
        data_stall: 454053,
        dcache_misses: 8019,
        dram_bytes: 994560,
        reg_digest: 0x5713df86bead514b,
        checksum: 0xdf2339d0d3d0da7e,
    },
    Golden {
        kernel: "mpeg2_b",
        config: "TM3260 (config A)",
        cycles: 770455,
        instrs: 268839,
        ops: 866968,
        exec_ops: 866937,
        branches: 1380,
        taken_branches: 1349,
        ifetch_stall: 2604,
        data_stall: 499012,
        dcache_misses: 16118,
        dram_bytes: 1396864,
        reg_digest: 0x7eddeba75465b9ee,
        checksum: 0xc044db2712e1ebd2,
    },
    Golden {
        kernel: "mpeg2_b",
        config: "TM3270 core, 16KB D$ @ 240 MHz (config B)",
        cycles: 598094,
        instrs: 275649,
        ops: 866968,
        exec_ops: 866937,
        branches: 1380,
        taken_branches: 1349,
        ifetch_stall: 1512,
        data_stall: 320933,
        dcache_misses: 8704,
        dram_bytes: 1058176,
        reg_digest: 0x7eddeba75465b9ee,
        checksum: 0xdf2339d0d3d0da7e,
    },
    Golden {
        kernel: "mpeg2_b",
        config: "TM3270 core, 16KB D$ @ 350 MHz (config C)",
        cycles: 747124,
        instrs: 275649,
        ops: 866968,
        exec_ops: 866937,
        branches: 1380,
        taken_branches: 1349,
        ifetch_stall: 2187,
        data_stall: 469288,
        dcache_misses: 8704,
        dram_bytes: 1058176,
        reg_digest: 0x7eddeba75465b9ee,
        checksum: 0xdf2339d0d3d0da7e,
    },
    Golden {
        kernel: "mpeg2_b",
        config: "TM3270 (config D)",
        cycles: 515096,
        instrs: 275649,
        ops: 866968,
        exec_ops: 866937,
        branches: 1380,
        taken_branches: 1349,
        ifetch_stall: 2187,
        data_stall: 237260,
        dcache_misses: 5486,
        dram_bytes: 641024,
        reg_digest: 0x7eddeba75465b9ee,
        checksum: 0xdf2339d0d3d0da7e,
    },
    Golden {
        kernel: "mpeg2_c",
        config: "TM3260 (config A)",
        cycles: 1147086,
        instrs: 268839,
        ops: 866968,
        exec_ops: 866937,
        branches: 1380,
        taken_branches: 1349,
        ifetch_stall: 2604,
        data_stall: 875643,
        dcache_misses: 23989,
        dram_bytes: 1902208,
        reg_digest: 0x1a2530977162f13c,
        checksum: 0xc044db2712e1ebd2,
    },
    Golden {
        kernel: "mpeg2_c",
        config: "TM3270 core, 16KB D$ @ 240 MHz (config B)",
        cycles: 876375,
        instrs: 275649,
        ops: 866968,
        exec_ops: 866937,
        branches: 1380,
        taken_branches: 1349,
        ifetch_stall: 1512,
        data_stall: 599214,
        dcache_misses: 13564,
        dram_bytes: 1680512,
        reg_digest: 0x1a2530977162f13c,
        checksum: 0xdf2339d0d3d0da7e,
    },
    Golden {
        kernel: "mpeg2_c",
        config: "TM3270 core, 16KB D$ @ 350 MHz (config C)",
        cycles: 1153198,
        instrs: 275649,
        ops: 866968,
        exec_ops: 866937,
        branches: 1380,
        taken_branches: 1349,
        ifetch_stall: 2187,
        data_stall: 875362,
        dcache_misses: 13564,
        dram_bytes: 1680512,
        reg_digest: 0x1a2530977162f13c,
        checksum: 0xdf2339d0d3d0da7e,
    },
    Golden {
        kernel: "mpeg2_c",
        config: "TM3270 (config D)",
        cycles: 523959,
        instrs: 275649,
        ops: 866968,
        exec_ops: 866937,
        branches: 1380,
        taken_branches: 1349,
        ifetch_stall: 2187,
        data_stall: 246123,
        dcache_misses: 5486,
        dram_bytes: 641408,
        reg_digest: 0x1a2530977162f13c,
        checksum: 0xdf2339d0d3d0da7e,
    },
    Golden {
        kernel: "filmdet",
        config: "TM3260 (config A)",
        cycles: 421390,
        instrs: 172806,
        ops: 442810,
        exec_ops: 442809,
        branches: 10800,
        taken_branches: 10799,
        ifetch_stall: 184,
        data_stall: 248400,
        dcache_misses: 5401,
        dram_bytes: 345920,
        reg_digest: 0x52aa81390adaf565,
        checksum: 0xea6113ad089a2dbd,
    },
    Golden {
        kernel: "filmdet",
        config: "TM3270 core, 16KB D$ @ 240 MHz (config B)",
        cycles: 345717,
        instrs: 194405,
        ops: 442810,
        exec_ops: 442809,
        branches: 10800,
        taken_branches: 10799,
        ifetch_stall: 112,
        data_stall: 151200,
        dcache_misses: 2701,
        dram_bytes: 345856,
        reg_digest: 0x52aa81390adaf565,
        checksum: 0x9bb01b710dc28bf9,
    },
    Golden {
        kernel: "filmdet",
        config: "TM3270 core, 16KB D$ @ 350 MHz (config C)",
        cycles: 413267,
        instrs: 194405,
        ops: 442810,
        exec_ops: 442809,
        branches: 10800,
        taken_branches: 10799,
        ifetch_stall: 162,
        data_stall: 218700,
        dcache_misses: 2701,
        dram_bytes: 345856,
        reg_digest: 0x52aa81390adaf565,
        checksum: 0x9bb01b710dc28bf9,
    },
    Golden {
        kernel: "filmdet",
        config: "TM3270 (config D)",
        cycles: 413267,
        instrs: 194405,
        ops: 442810,
        exec_ops: 442809,
        branches: 10800,
        taken_branches: 10799,
        ifetch_stall: 162,
        data_stall: 218700,
        dcache_misses: 2701,
        dram_bytes: 345856,
        reg_digest: 0x52aa81390adaf565,
        checksum: 0x9bb01b710dc28bf9,
    },
    Golden {
        kernel: "majority_sel",
        config: "TM3260 (config A)",
        cycles: 578039,
        instrs: 205204,
        ops: 550808,
        exec_ops: 550807,
        branches: 10800,
        taken_branches: 10799,
        ifetch_stall: 235,
        data_stall: 372600,
        dcache_misses: 10801,
        dram_bytes: 860288,
        reg_digest: 0xfa65fd152a6b2149,
        checksum: 0xbb5c8b5d12f772be,
    },
    Golden {
        kernel: "majority_sel",
        config: "TM3270 core, 16KB D$ @ 240 MHz (config B)",
        cycles: 496972,
        instrs: 270004,
        ops: 550808,
        exec_ops: 550807,
        branches: 10800,
        taken_branches: 10799,
        ifetch_stall: 168,
        data_stall: 226800,
        dcache_misses: 5401,
        dram_bytes: 687488,
        reg_digest: 0xfa65fd152a6b2149,
        checksum: 0xf8fc0dcfd2df8328,
    },
    Golden {
        kernel: "majority_sel",
        config: "TM3270 core, 16KB D$ @ 350 MHz (config C)",
        cycles: 598297,
        instrs: 270004,
        ops: 550808,
        exec_ops: 550807,
        branches: 10800,
        taken_branches: 10799,
        ifetch_stall: 243,
        data_stall: 328050,
        dcache_misses: 5401,
        dram_bytes: 687488,
        reg_digest: 0xfa65fd152a6b2149,
        checksum: 0xf8fc0dcfd2df8328,
    },
    Golden {
        kernel: "majority_sel",
        config: "TM3270 (config D)",
        cycles: 598297,
        instrs: 270004,
        ops: 550808,
        exec_ops: 550807,
        branches: 10800,
        taken_branches: 10799,
        ifetch_stall: 243,
        data_stall: 328050,
        dcache_misses: 5401,
        dram_bytes: 658816,
        reg_digest: 0xfa65fd152a6b2149,
        checksum: 0xf8fc0dcfd2df8328,
    },
];

fn find(kernel: &str, config: &str) -> &'static Golden {
    GOLDENS
        .iter()
        .find(|g| g.kernel == kernel && g.config == config)
        .unwrap_or_else(|| panic!("no golden for {kernel} on {config}"))
}

/// Every golden workload on every evaluation configuration reproduces
/// the pre-predecode engine bit-for-bit.
#[test]
fn predecoded_engine_matches_pinned_goldens() {
    let configs = MachineConfig::evaluation_suite();
    let mut cells = 0usize;
    for workload in registry(1).iter().filter(|w| w.is_golden()) {
        for config in &configs {
            let g = find(workload.name(), config.name);
            let program = workload.build(&config.issue).unwrap();
            let checksum = workload.golden_checksum(&config.issue).unwrap();
            let mut m = Machine::new(config.clone(), program).unwrap();
            workload.kernel().setup(&mut m);
            let stats = m
                .run_with(RunOptions::budget(workload.cycle_budget()))
                .into_result()
                .unwrap_or_else(|e| panic!("{} on {}: {e}", g.kernel, g.config));
            workload
                .kernel()
                .verify(&m)
                .unwrap_or_else(|e| panic!("{} on {}: {e}", g.kernel, g.config));
            let cell = format!("{} on {}", g.kernel, g.config);
            assert_eq!(stats.cycles, g.cycles, "cycles: {cell}");
            assert_eq!(stats.instrs, g.instrs, "instrs: {cell}");
            assert_eq!(stats.ops, g.ops, "ops: {cell}");
            assert_eq!(stats.exec_ops, g.exec_ops, "exec_ops: {cell}");
            assert_eq!(stats.branches, g.branches, "branches: {cell}");
            assert_eq!(
                stats.taken_branches, g.taken_branches,
                "taken_branches: {cell}"
            );
            assert_eq!(
                stats.ifetch_stall_cycles, g.ifetch_stall,
                "ifetch_stall: {cell}"
            );
            assert_eq!(stats.data_stall_cycles, g.data_stall, "data_stall: {cell}");
            assert_eq!(
                stats.mem.dcache.misses, g.dcache_misses,
                "dcache_misses: {cell}"
            );
            assert_eq!(stats.mem.dram.bytes, g.dram_bytes, "dram_bytes: {cell}");
            assert_eq!(m.reg_digest(), g.reg_digest, "reg_digest: {cell}");
            assert_eq!(checksum, g.checksum, "golden checksum: {cell}");
            cells += 1;
        }
    }
    assert_eq!(cells, GOLDENS.len(), "every pinned golden was exercised");
}

/// The two independently maintained golden tables — this file's
/// `GOLDENS` and `tm3270_kernels::pinned_counts` (which
/// `repro_simspeed --check-golden` enforces in CI) — must agree on
/// every pinned (instrs, cycles) cell, so a regeneration of one that
/// silently drifts from the other cannot land.
#[test]
fn goldens_agree_with_the_pinned_counts_table() {
    for g in GOLDENS {
        let (instrs, cycles) = tm3270_kernels::pinned_counts(g.config, g.kernel)
            .unwrap_or_else(|| panic!("{} on {} missing from pinned_counts", g.kernel, g.config));
        assert_eq!(
            (g.instrs, g.cycles),
            (instrs, cycles),
            "{} on {}: GOLDENS vs pinned_counts",
            g.kernel,
            g.config
        );
    }
}

/// The watchdog fault path fires on the same cycle with the same crash
/// report as the pre-predecode engine.
#[test]
fn watchdog_livelock_report_is_pinned() {
    let config = MachineConfig::tm3270();
    let mut b = ProgramBuilder::new(config.issue);
    let top = b.bind_here();
    b.jump(top);
    let mut m = Machine::new(config, b.build().unwrap()).unwrap();
    m.set_watchdog(500);
    let outcome = m.run_with(RunOptions::budget(100_000).with_report());
    let report = outcome.report.expect("livelock must trip");
    assert_eq!(report.cycle, 500);
    assert_eq!(report.instrs, 419);
    assert_eq!(report.pc, 4);
    assert_eq!(report.reg_digest, 0xd22f25ae35c23eb4);
    assert_eq!(
        format!("{:?}", report.error),
        "NoProgress { pc: 4, cycles: 500 }"
    );
}

/// The default 200-run seed-1 fault campaign reproduces the pinned
/// outcome histogram (fault paths are deterministic too).
#[test]
fn fault_campaign_histogram_is_pinned() {
    let summary = run_campaign(&CampaignOptions::new());
    assert_eq!(summary.seed, 1);
    assert_eq!(summary.runs, 200);
    assert_eq!(summary.flips_total, 508);
    assert_eq!(summary.panics, 0);
    assert_eq!(summary.error_kinds(), 6);
    let hist: Vec<(&str, u64)> = summary
        .outcomes
        .iter()
        .map(|(k, v)| (k.as_str(), *v))
        .collect();
    assert_eq!(
        hist,
        [
            ("Completed", 31),
            ("CycleLimit", 2),
            ("Decode", 89),
            ("InvalidOpcode", 2),
            ("MisalignedAccess", 43),
            ("NoProgress", 4),
            ("OutOfBoundsAccess", 29),
        ]
    );
}
