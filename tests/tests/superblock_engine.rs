//! Superblock-engine seam suite: the fused straight-line dispatch loop
//! must be invisible at every architectural boundary.
//!
//! Three boundaries are attacked here:
//!
//! 1. **Block discovery** — [`tm3270_encode::superblocks`] must
//!    partition every registry workload program on both issue models:
//!    contiguous spans, no gaps, no overlaps, and every static jump
//!    target landing exactly on a block head (a jump into the middle of
//!    a fused block would execute instructions the branch skipped).
//! 2. **Budget slicing** — a run chopped into budget quanta of 1, 7 and
//!    1000 cycles re-enters the fused loop mid-block at every seam and
//!    must still complete bit-identically to an uninterrupted run, down
//!    to the full snapshot byte image (registers, write ring, caches,
//!    DRAM timing, memory).
//! 3. **Engine fallback** — a forced-fallback run and a sink-attached
//!    (traced) run must agree with the fused engine on every simulated
//!    statistic, and the traced run must actually route through the
//!    per-instruction fallback path while emitting a self-consistent
//!    event stream.

use std::cell::RefCell;
use std::rc::Rc;

use tm3270_core::{Machine, MachineConfig, RunOptions, SimError};
use tm3270_encode::superblocks;
use tm3270_kernels::registry;
use tm3270_obs::{CounterSink, SinkHandle};

/// Builds the machine for one (workload, config) cell with kernel setup.
fn build_cell(workload: &tm3270_kernels::Workload, config: &MachineConfig) -> Machine {
    let program = workload.build(&config.issue).unwrap();
    let mut m = Machine::new(config.clone(), program).unwrap();
    workload.kernel().setup(&mut m);
    m
}

/// `superblocks` partitions every registry workload program on both
/// issue models: block 0 starts at instruction 0, spans are contiguous
/// and non-empty, the last span ends at the program length, and every
/// static jump target is a block head.
#[test]
fn superblocks_partition_every_workload_program() {
    let configs = MachineConfig::evaluation_suite();
    let mut programs = 0usize;
    for workload in registry(1).iter() {
        for config in &configs {
            let program = match workload.build(&config.issue) {
                Ok(p) => p,
                // Workloads gated to one issue model are covered by the
                // model they support.
                Err(_) => continue,
            };
            let cell = format!("{} on {}", workload.name(), config.name);
            let blocks = superblocks(&program);
            let n = program.instrs.len();
            assert!(n > 0, "{cell}: empty program");
            assert_eq!(blocks.first().unwrap().head, 0, "{cell}: first head");
            assert_eq!(blocks.last().unwrap().end, n, "{cell}: last end");
            for pair in blocks.windows(2) {
                assert_eq!(
                    pair[0].end, pair[1].head,
                    "{cell}: gap or overlap between blocks"
                );
            }
            for b in &blocks {
                assert!(b.head < b.end, "{cell}: empty block at {}", b.head);
            }
            // Every static jump target (immediate-target jumps scanned
            // straight out of the instruction stream, independently of
            // the program's own jump_targets list) must be a head.
            let heads: Vec<usize> = blocks.iter().map(|b| b.head).collect();
            for instr in &program.instrs {
                for (_, op) in instr.ops() {
                    use tm3270_isa::Opcode::{Jmpf, Jmpi, Jmpt};
                    if matches!(op.opcode, Jmpt | Jmpf | Jmpi) {
                        let target = op.imm as usize;
                        if target < n {
                            assert!(
                                heads.binary_search(&target).is_ok(),
                                "{cell}: jump target {target} is not a block head"
                            );
                        }
                    }
                }
            }
            // And the program's declared jump-target list agrees.
            for &t in &program.jump_targets {
                if t < n {
                    assert!(
                        heads.binary_search(&t).is_ok(),
                        "{cell}: declared jump target {t} is not a block head"
                    );
                }
            }
            programs += 1;
        }
    }
    assert!(programs >= 44, "only {programs} programs partitioned");
}

/// Runs `m` to completion in absolute-budget slices of `quantum`
/// cycles, returning the final stats. Every slice but the last trips
/// the budget as a `CycleLimit`, forcing the fused loop to flush and
/// re-enter mid-block at the seam.
fn run_sliced(
    m: &mut Machine,
    quantum: u64,
    full_budget: u64,
    cell: &str,
) -> tm3270_core::RunStats {
    let mut budget = quantum.min(full_budget);
    loop {
        match m.run_with(RunOptions::budget(budget)).into_result() {
            Ok(stats) => return stats,
            Err(SimError::CycleLimit { .. }) => {
                assert!(
                    budget < full_budget,
                    "{cell}: did not complete within the reference budget"
                );
                budget = (budget + quantum).min(full_budget);
            }
            Err(e) => panic!("{cell}: {e}"),
        }
    }
}

/// Budget slicing is bit-identical to an uninterrupted run on every
/// golden kernel: same final statistics, register digest, and full
/// snapshot byte image, for quanta that slice every cycle (1), at a
/// coprime stride (7), and at a coarse stride (1000).
#[test]
fn budget_slices_are_bit_identical_to_uninterrupted() {
    let config = MachineConfig::tm3270();
    let mut cells = 0usize;
    for workload in registry(1).iter().filter(|w| w.is_golden()) {
        let cell = format!("{} on {}", workload.name(), config.name);
        let mut reference = build_cell(workload, &config);
        let ref_stats = reference
            .run_with(RunOptions::budget(workload.cycle_budget()))
            .into_result()
            .unwrap_or_else(|e| panic!("{cell}: {e}"));
        let ref_bytes = reference.snapshot().into_bytes();

        // Quantum 1 re-enters the engine on every simulated cycle; it
        // is O(cycles) run_with calls, so bound it to the short
        // kernels. Quanta 7 and 1000 cover every golden kernel.
        let quanta: &[u64] = if ref_stats.cycles <= 50_000 {
            &[1, 7, 1000]
        } else {
            &[7, 1000]
        };
        for &quantum in quanta {
            let mut sliced = build_cell(workload, &config);
            let stats = run_sliced(&mut sliced, quantum, workload.cycle_budget(), &cell);
            assert_eq!(stats, ref_stats, "{cell}: stats, quantum {quantum}");
            assert_eq!(
                sliced.reg_digest(),
                reference.reg_digest(),
                "{cell}: reg digest, quantum {quantum}"
            );
            assert_eq!(
                sliced.snapshot().into_bytes(),
                ref_bytes,
                "{cell}: snapshot bytes, quantum {quantum}"
            );
        }
        cells += 1;
    }
    assert_eq!(cells, 11, "every golden kernel was sliced");
}

/// The forced-fallback engine (per-instruction `step_record` loop)
/// completes every golden kernel with statistics, register digest and
/// snapshot bytes identical to the fused engine, and the telemetry
/// proves each run used the engine it claims.
#[test]
fn forced_fallback_matches_fused_bit_for_bit() {
    let config = MachineConfig::tm3270();
    let mut cells = 0usize;
    for workload in registry(1).iter().filter(|w| w.is_golden()) {
        let cell = format!("{} on {}", workload.name(), config.name);
        let mut fused = build_cell(workload, &config);
        let fused_stats = fused
            .run_with(RunOptions::budget(workload.cycle_budget()))
            .into_result()
            .unwrap_or_else(|e| panic!("{cell}: {e}"));
        let tele = fused.engine_telemetry();
        assert_eq!(tele.fused_instrs, fused_stats.instrs, "{cell}: fused share");
        assert_eq!(tele.fallback_instrs, 0, "{cell}: fallback share");

        let mut fallback = build_cell(workload, &config);
        fallback.set_force_fallback(true);
        let fb_stats = fallback
            .run_with(RunOptions::budget(workload.cycle_budget()))
            .into_result()
            .unwrap_or_else(|e| panic!("{cell}: fallback: {e}"));
        let tele = fallback.engine_telemetry();
        assert_eq!(tele.fused_instrs, 0, "{cell}: fallback run fused share");
        assert_eq!(
            tele.fallback_instrs, fb_stats.instrs,
            "{cell}: fallback share"
        );

        assert_eq!(fb_stats, fused_stats, "{cell}: stats diverged");
        assert_eq!(
            fallback.reg_digest(),
            fused.reg_digest(),
            "{cell}: reg digest"
        );
        assert_eq!(
            fallback.snapshot().into_bytes(),
            fused.snapshot().into_bytes(),
            "{cell}: snapshot bytes"
        );
        fallback
            .kernel_verify(workload)
            .unwrap_or_else(|e| panic!("{cell}: verify failed: {e}"));
        cells += 1;
    }
    assert_eq!(cells, 11, "every golden kernel ran on both engines");
}

/// Attaching an event sink routes the run through the per-instruction
/// traced path (the fused loop must disable itself), emits a
/// self-consistent per-cycle event stream, and still reproduces the
/// fused engine's statistics and register digest exactly.
#[test]
fn sink_attached_run_traces_the_fallback_path_bit_identically() {
    let config = MachineConfig::tm3270();
    for workload in registry(1).iter().filter(|w| w.is_golden()).take(3) {
        let cell = format!("{} on {}", workload.name(), config.name);
        let mut fused = build_cell(workload, &config);
        let fused_stats = fused
            .run_with(RunOptions::budget(workload.cycle_budget()))
            .into_result()
            .unwrap_or_else(|e| panic!("{cell}: {e}"));

        let mut traced = build_cell(workload, &config);
        let counters = Rc::new(RefCell::new(CounterSink::new()));
        traced.attach_sink(SinkHandle::from(counters.clone()));
        let traced_stats = traced
            .run_with(RunOptions::budget(workload.cycle_budget()))
            .into_result()
            .unwrap_or_else(|e| panic!("{cell}: traced: {e}"));
        let tele = traced.engine_telemetry();
        assert_eq!(tele.fused_instrs, 0, "{cell}: traced run must not fuse");
        assert_eq!(
            tele.fallback_instrs, traced_stats.instrs,
            "{cell}: traced share"
        );

        assert_eq!(traced_stats, fused_stats, "{cell}: stats diverged");
        assert_eq!(traced.reg_digest(), fused.reg_digest(), "{cell}: digest");

        // The event stream the fused engine skipped must be complete:
        // the cycle-bucket decomposition covers every simulated cycle,
        // per-slot dispatch counts sum to the op totals, and the branch
        // counters match the run statistics.
        let c = counters.borrow();
        assert!(c.events > 0, "{cell}: no events emitted");
        assert_eq!(
            c.buckets().total(),
            traced_stats.cycles,
            "{cell}: stall buckets must decompose every cycle"
        );
        let ops: u64 = c.ops_per_slot.iter().sum();
        let exec: u64 = c.executed_per_slot.iter().sum();
        assert_eq!(ops, traced_stats.ops, "{cell}: per-slot op counts");
        assert_eq!(exec, traced_stats.exec_ops, "{cell}: per-slot exec counts");
        assert_eq!(
            c.branches_resolved, traced_stats.branches,
            "{cell}: branches"
        );
        assert_eq!(
            c.branches_taken, traced_stats.taken_branches,
            "{cell}: taken branches"
        );
    }
}

/// Gives tests a verify entry point without re-importing the kernel
/// trait everywhere.
trait KernelVerify {
    fn kernel_verify(&self, workload: &tm3270_kernels::Workload) -> Result<(), String>;
}

impl KernelVerify for Machine {
    fn kernel_verify(&self, workload: &tm3270_kernels::Workload) -> Result<(), String> {
        workload.kernel().verify(self).map_err(|e| e.to_string())
    }
}
