//! End-to-end scheduler/pipeline correctness property: for random
//! straight-line dataflow programs, the scheduled program executed on the
//! cycle-approximate machine (with exposed latencies, write-back timing,
//! caches, the works) must produce exactly the same architectural state
//! as a sequential functional interpretation of the original operation
//! list.
//!
//! This is the strongest cross-crate invariant in the reproduction: it
//! exercises `tm3270-isa` semantics, the `tm3270-asm` dependence analysis
//! and slot/latency scheduling, the `tm3270-encode` round-trip (the
//! machine runs from the encoded image), and the `tm3270-core` +
//! `tm3270-mem` execution path.

use tm3270_asm::ProgramBuilder;
use tm3270_core::{Machine, MachineConfig, RunOptions};
use tm3270_fault::SmallRng;
use tm3270_isa::{execute, FlatMemory, Op, Opcode, Reg, RegFile};

const BINARY_OPS: &[Opcode] = &[
    Opcode::Iadd,
    Opcode::Isub,
    Opcode::Iand,
    Opcode::Ior,
    Opcode::Ixor,
    Opcode::Imin,
    Opcode::Imax,
    Opcode::Quadavg,
    Opcode::Quadumin,
    Opcode::Quadumax,
    Opcode::Ume8uu,
    Opcode::Dspidualadd,
    Opcode::Dspidualsub,
    Opcode::Imul,
    Opcode::Umulm,
    Opcode::Ifir16,
    Opcode::Ifir8ui,
    Opcode::Asl,
    Opcode::Lsr,
    Opcode::Funshift2,
    Opcode::Pack16Lsb,
    Opcode::MergeMsb,
];

const UNARY_OPS: &[Opcode] = &[
    Opcode::Sex8,
    Opcode::Zex16,
    Opcode::Bitinv,
    Opcode::Iabs,
    Opcode::Dspidualabs,
];

const STORE_OPS: &[Opcode] = &[Opcode::St8d, Opcode::St16d, Opcode::St32d];

/// One random operation from a representative mix of ALU, SIMD,
/// multiplier, shifter and memory operations. Registers are drawn from
/// r2..r18 so collisions (and thus hazards) are frequent; addresses stay
/// in a small word-aligned window so cache lines collide.
fn random_op(rng: &mut SmallRng) -> Op {
    let reg = |rng: &mut SmallRng| Reg::new(2 + rng.below(16) as u8);
    // Guard register: mostly the always-true r1, sometimes data-dependent.
    let guard = |rng: &mut SmallRng| {
        if rng.chance(4, 5) {
            Reg::ONE
        } else {
            Reg::new(2 + rng.below(16) as u8)
        }
    };
    let addr_imm = |rng: &mut SmallRng| rng.range_i32(0, 63) * 4;

    match rng.below(9) {
        // Binary ALU / SIMD / multiplier operations.
        0 => {
            let opc = BINARY_OPS[rng.index(BINARY_OPS.len())];
            let g = guard(rng);
            let (d, s1, s2) = (reg(rng), reg(rng), reg(rng));
            Op::rrr(opc, d, s1, s2).with_guard(g)
        }
        // Unary operations.
        1 => {
            let opc = UNARY_OPS[rng.index(UNARY_OPS.len())];
            let (d, s) = (reg(rng), reg(rng));
            Op::rr(opc, d, s)
        }
        // Immediates.
        2 => Op::imm(reg(rng), rng.range_i32(-4000, 3999)),
        3 => {
            let (d, s) = (reg(rng), reg(rng));
            Op::rri(Opcode::Iaddi, d, s, rng.range_i32(-100, 99))
        }
        4 => {
            let (d, s) = (reg(rng), reg(rng));
            Op::rri(Opcode::Asri, d, s, rng.range_i32(0, 30))
        }
        // Loads (various widths, possibly non-aligned via the +off).
        5 => {
            let (d, s) = (reg(rng), reg(rng));
            let a = addr_imm(rng) + rng.range_i32(0, 2);
            Op::rri(Opcode::Ld32d, d, s, a)
        }
        6 => {
            let (d, s) = (reg(rng), reg(rng));
            Op::rri(Opcode::Uld16d, d, s, addr_imm(rng))
        }
        7 => {
            let (d, s) = (reg(rng), reg(rng));
            Op::rri(Opcode::Ld8d, d, s, addr_imm(rng))
        }
        // Stores (guarded sometimes).
        _ => {
            let g = guard(rng);
            let (s1, s2) = (reg(rng), reg(rng));
            let a = addr_imm(rng);
            let opc = STORE_OPS[rng.index(STORE_OPS.len())];
            Op::new(opc, g, &[s1, s2], &[], a)
        }
    }
}

/// Sequential functional interpretation: operations applied in order with
/// immediate result visibility.
fn interpret(ops: &[Op], mem_size: usize) -> (RegFile, FlatMemory) {
    let mut rf = RegFile::new();
    let mut mem = FlatMemory::new(mem_size);
    for op in ops {
        let res = execute(op, &rf, &mut mem).expect("in-bounds access on a permissive memory");
        for (r, v) in res.write_iter() {
            rf.write(r, v);
        }
    }
    (rf, mem)
}

#[test]
fn scheduled_machine_matches_sequential_interpretation() {
    let mut rng = SmallRng::new(0x5c4e_d001);
    for case in 0..64 {
        let ops: Vec<Op> = (0..1 + rng.index(59))
            .map(|_| random_op(&mut rng))
            .collect();
        let config = if rng.chance(1, 2) {
            MachineConfig::tm3270()
        } else {
            MachineConfig::tm3260()
        };
        // Base registers start at 0, so all memory traffic lands in the
        // first pages of the flat memory.
        let (ref_rf, ref_mem) = interpret(&ops, config.mem.mem_size);

        let mut b = ProgramBuilder::new(config.issue);
        for &op in &ops {
            b.op(op);
        }
        let program = b.build().expect("random dataflow must schedule");
        let mut machine = Machine::new(config, program).expect("encodable");
        let stats = machine
            .run_with(RunOptions::budget(10_000_000))
            .into_result()
            .expect("halts");
        assert!(stats.cycles > 0);

        for i in 0..128u8 {
            let r = Reg::new(i);
            assert_eq!(
                machine.reg(r),
                ref_rf.read(r),
                "case {case}: register {r} differs"
            );
        }
        // Compare the touched memory window.
        let got = machine.read_data(0, 4096);
        let mut want = vec![0u8; 4096];
        ref_mem.read_into(0, &mut want);
        assert_eq!(&got[..], &want[..], "case {case}: memory");
    }
}
