//! End-to-end scheduler/pipeline correctness property: for random
//! straight-line dataflow programs, the scheduled program executed on the
//! cycle-approximate machine (with exposed latencies, write-back timing,
//! caches, the works) must produce exactly the same architectural state
//! as a sequential functional interpretation of the original operation
//! list.
//!
//! This is the strongest cross-crate invariant in the reproduction: it
//! exercises `tm3270-isa` semantics, the `tm3270-asm` dependence analysis
//! and slot/latency scheduling, the `tm3270-encode` round-trip (the
//! machine runs from the encoded image), and the `tm3270-core` +
//! `tm3270-mem` execution path.

use proptest::prelude::*;
use tm3270_asm::ProgramBuilder;
use tm3270_core::{Machine, MachineConfig};
use tm3270_isa::{execute, FlatMemory, Op, Opcode, Reg, RegFile};

/// The operation pool for random program generation: a representative
/// mix of ALU, SIMD, multiplier, shifter and memory operations.
fn op_strategy() -> impl Strategy<Value = Op> {
    // Registers r2..r18 so collisions (and thus hazards) are frequent.
    let reg = (2u8..18).prop_map(Reg::new);
    let guard = prop_oneof![4 => Just(Reg::ONE), 1 => (2u8..18).prop_map(Reg::new)];
    // Word-aligned addresses within a small window (cache lines collide).
    let addr_imm = (0i32..64).prop_map(|v| v * 4);

    prop_oneof![
        // Binary ALU / SIMD / multiplier operations.
        (
            prop_oneof![
                Just(Opcode::Iadd),
                Just(Opcode::Isub),
                Just(Opcode::Iand),
                Just(Opcode::Ior),
                Just(Opcode::Ixor),
                Just(Opcode::Imin),
                Just(Opcode::Imax),
                Just(Opcode::Quadavg),
                Just(Opcode::Quadumin),
                Just(Opcode::Quadumax),
                Just(Opcode::Ume8uu),
                Just(Opcode::Dspidualadd),
                Just(Opcode::Dspidualsub),
                Just(Opcode::Imul),
                Just(Opcode::Umulm),
                Just(Opcode::Ifir16),
                Just(Opcode::Ifir8ui),
                Just(Opcode::Asl),
                Just(Opcode::Lsr),
                Just(Opcode::Funshift2),
                Just(Opcode::Pack16Lsb),
                Just(Opcode::MergeMsb),
            ],
            guard.clone(),
            reg.clone(),
            reg.clone(),
            reg.clone()
        )
            .prop_map(|(opc, g, d, s1, s2)| Op::rrr(opc, d, s1, s2).with_guard(g)),
        // Unary operations.
        (
            prop_oneof![
                Just(Opcode::Sex8),
                Just(Opcode::Zex16),
                Just(Opcode::Bitinv),
                Just(Opcode::Iabs),
                Just(Opcode::Dspidualabs),
            ],
            reg.clone(),
            reg.clone()
        )
            .prop_map(|(opc, d, s)| Op::rr(opc, d, s)),
        // Immediates.
        (reg.clone(), -4000i32..4000).prop_map(|(d, v)| Op::imm(d, v)),
        (reg.clone(), reg.clone(), -100i32..100)
            .prop_map(|(d, s, v)| Op::rri(Opcode::Iaddi, d, s, v)),
        (reg.clone(), reg.clone(), 0i32..31)
            .prop_map(|(d, s, v)| Op::rri(Opcode::Asri, d, s, v)),
        // Loads (various widths, possibly non-aligned via the +1 variant).
        (reg.clone(), reg.clone(), addr_imm.clone(), 0i32..3).prop_map(|(d, s, a, off)| {
            Op::rri(Opcode::Ld32d, d, s, a + off)
        }),
        (reg.clone(), reg.clone(), addr_imm.clone())
            .prop_map(|(d, s, a)| Op::rri(Opcode::Uld16d, d, s, a)),
        (reg.clone(), reg.clone(), addr_imm.clone())
            .prop_map(|(d, s, a)| Op::rri(Opcode::Ld8d, d, s, a)),
        // Stores (guarded sometimes).
        (
            guard,
            reg.clone(),
            reg.clone(),
            addr_imm.clone(),
            prop_oneof![Just(Opcode::St8d), Just(Opcode::St16d), Just(Opcode::St32d)]
        )
            .prop_map(|(g, s1, s2, a, opc)| Op::new(opc, g, &[s1, s2], &[], a)),
    ]
}

/// Sequential functional interpretation: operations applied in order with
/// immediate result visibility.
fn interpret(ops: &[Op], mem_size: usize) -> (RegFile, FlatMemory) {
    let mut rf = RegFile::new();
    let mut mem = FlatMemory::new(mem_size);
    for op in ops {
        let res = execute(op, &rf, &mut mem);
        for (r, v) in res.write_iter() {
            rf.write(r, v);
        }
    }
    (rf, mem)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn scheduled_machine_matches_sequential_interpretation(
        ops in prop::collection::vec(op_strategy(), 1..60),
        tm3270 in any::<bool>(),
    ) {
        let config = if tm3270 {
            MachineConfig::tm3270()
        } else {
            MachineConfig::tm3260()
        };
        // Base registers start at 0, so all memory traffic lands in the
        // first pages of the flat memory.
        let (ref_rf, ref_mem) = interpret(&ops, config.mem.mem_size);

        let mut b = ProgramBuilder::new(config.issue);
        for &op in &ops {
            b.op(op);
        }
        let program = b.build().expect("random dataflow must schedule");
        let mut machine = Machine::new(config, program).expect("encodable");
        let stats = machine.run(10_000_000).expect("halts");
        prop_assert!(stats.cycles > 0);

        for i in 0..128u8 {
            let r = Reg::new(i);
            prop_assert_eq!(
                machine.reg(r),
                ref_rf.read(r),
                "register {} differs", r
            );
        }
        // Compare the touched memory window.
        let got = machine.read_data(0, 4096);
        prop_assert_eq!(&got[..], &ref_mem.as_slice()[..4096]);
    }
}
