//! Kill-and-resume integration: a checkpointed fault campaign that is
//! interrupted partway and resumed — at any thread count — must emit a
//! summary byte-identical to an uninterrupted serial run's. This is the
//! cross-crate proof that the checkpoint journal (harness), the payload
//! round-trip and sample-crash regeneration (bench) and the snapshot
//! machinery behind the crash reports compose without breaking the
//! repository's determinism contract.

use std::path::PathBuf;

use tm3270_bench::campaign::{run_campaign, run_campaign_checkpointed, CampaignOptions};
use tm3270_harness::{CheckpointError, SweepOptions};

fn opts(runs: u64, seed: u64, threads: usize) -> CampaignOptions {
    CampaignOptions {
        runs,
        sweep: SweepOptions::new().seed(seed).threads(threads),
        verbose: false,
    }
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("tm3270_resume_{}_{name}.jsonl", std::process::id()))
}

#[test]
fn interrupted_campaigns_resume_byte_identically_at_any_thread_count() {
    let reference = run_campaign(&opts(60, 9, 1));
    let expected = reference.to_json();
    for threads in [1usize, 2, 8] {
        let path = temp_path(&format!("t{threads}"));
        let o = opts(60, 9, threads);
        let aborted = run_campaign_checkpointed(&o, &path, false, Some(22)).unwrap();
        assert!(
            aborted.is_none(),
            "threads {threads}: abort left it incomplete"
        );
        let resumed = run_campaign_checkpointed(&o, &path, true, None)
            .unwrap()
            .expect("the resume finishes the campaign");
        assert_eq!(
            resumed.to_json(),
            expected,
            "threads {threads}: resumed JSON diverged from the serial run"
        );
        assert_eq!(resumed.report(), reference.report(), "threads {threads}");
        let _ = std::fs::remove_file(&path);
    }
}

#[test]
fn a_checkpoint_from_a_different_campaign_is_refused() {
    let path = temp_path("mismatch");
    run_campaign_checkpointed(&opts(30, 4, 2), &path, false, Some(10)).unwrap();
    // Wrong seed.
    let err = run_campaign_checkpointed(&opts(30, 5, 2), &path, true, None).unwrap_err();
    assert!(
        matches!(
            err,
            CheckpointError::Mismatch {
                what: "campaign seed",
                ..
            }
        ),
        "{err}"
    );
    // Wrong run count.
    let err = run_campaign_checkpointed(&opts(31, 4, 2), &path, true, None).unwrap_err();
    assert!(
        matches!(
            err,
            CheckpointError::Mismatch {
                what: "job total",
                ..
            }
        ),
        "{err}"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn a_completed_checkpoint_resumes_without_executing_anything() {
    let path = temp_path("noop");
    let o = opts(30, 4, 2);
    run_campaign_checkpointed(&o, &path, false, None).unwrap();
    // Resume of a finished campaign re-reads the journal; only the
    // sample crash is regenerated, so it stays byte-identical.
    let again = run_campaign_checkpointed(&o, &path, true, None)
        .unwrap()
        .expect("already complete");
    assert_eq!(again.to_json(), run_campaign(&o).to_json());
    let _ = std::fs::remove_file(&path);
}
