//! Property tests: the VLIW compression encode/decode round-trip is exact
//! for arbitrary scheduled programs, including jump targets, two-slot
//! operations, guarded operations and immediates at the format
//! boundaries — and decoding a corrupted image never panics: every
//! single-bit flip either decodes to a (possibly different) valid program
//! or returns a typed error.
//!
//! Randomised inputs come from the deterministic `tm3270_fault::SmallRng`
//! generator, so every case is reproducible from the seeds below.

use tm3270_asm::ProgramBuilder;
use tm3270_core::{Machine, MachineConfig, RunOptions};
use tm3270_encode::{decode_program, decode_program_detailed, encode_program};
use tm3270_fault::{FaultInjector, FaultSite, SmallRng};
use tm3270_isa::{Instr, IssueModel, Op, Opcode, Program, Reg};

fn any_reg(rng: &mut SmallRng) -> Reg {
    Reg::new(rng.below(128) as u8)
}

fn writable_reg(rng: &mut SmallRng) -> Reg {
    Reg::new(2 + rng.below(126) as u8)
}

/// Single-slot operations across every encoding format.
fn single_op(rng: &mut SmallRng) -> Op {
    match rng.below(6) {
        0 => {
            let (d, s1, s2, g) = (writable_reg(rng), any_reg(rng), any_reg(rng), any_reg(rng));
            Op::rrr(Opcode::Iadd, d, s1, s2).with_guard(g)
        }
        1 => Op::rr(Opcode::Bitinv, writable_reg(rng), any_reg(rng)),
        2 => Op::imm(writable_reg(rng), rng.range_i32(-(1 << 25), (1 << 25) - 1)),
        3 => Op::rri(
            Opcode::Ld32d,
            writable_reg(rng),
            any_reg(rng),
            rng.range_i32(-2048, 2047),
        ),
        4 => {
            let (g, s1, s2) = (any_reg(rng), any_reg(rng), any_reg(rng));
            Op::new(Opcode::St16d, g, &[s1, s2], &[], rng.range_i32(-2048, 2047))
        }
        _ => Op::new(Opcode::Jmpt, any_reg(rng), &[], &[], rng.range_i32(0, 999)),
    }
}

fn two_slot_op(rng: &mut SmallRng) -> Op {
    match rng.below(3) {
        0 => {
            let g = any_reg(rng);
            let (s1, s2, s3, s4) = (any_reg(rng), any_reg(rng), any_reg(rng), any_reg(rng));
            let (d1, d2) = (writable_reg(rng), writable_reg(rng));
            Op::new(Opcode::SuperDualimix, g, &[s1, s2, s3, s4], &[d1, d2], 0)
        }
        1 => {
            let g = any_reg(rng);
            let (s1, s2) = (any_reg(rng), any_reg(rng));
            let (d1, d2) = (writable_reg(rng), writable_reg(rng));
            Op::new(Opcode::SuperLd32r, g, &[s1, s2], &[d1, d2], 0)
        }
        _ => {
            let g = any_reg(rng);
            let (s1, s2, s3) = (any_reg(rng), any_reg(rng), any_reg(rng));
            let (d1, d2) = (writable_reg(rng), writable_reg(rng));
            Op::new(Opcode::SuperCabacStr, g, &[s1, s2, s3], &[d1, d2], 0)
        }
    }
}

/// An arbitrary instruction: random ops placed in random non-conflicting
/// slots.
fn any_instr(rng: &mut SmallRng) -> Instr {
    let mut instr = Instr::nop();
    if rng.chance(1, 2) {
        // Anchor at slot 1 or 3 (the only legal anchors).
        let slot = if rng.chance(1, 2) { 1 } else { 3 };
        instr.place(two_slot_op(rng), slot);
    }
    for _ in 0..rng.below(4) {
        let op = single_op(rng);
        let slot = rng.index(5);
        let can_jump = !op.opcode.is_jump() || (1..=3).contains(&slot);
        if !instr.slots[slot].is_used() && can_jump {
            instr.place(op, slot);
        }
    }
    instr
}

#[test]
fn arbitrary_programs_round_trip() {
    let mut rng = SmallRng::new(0xe4c0_de01);
    for _ in 0..256 {
        let n = 1 + rng.index(19);
        let mut instrs: Vec<Instr> = (0..n).map(|_| any_instr(&mut rng)).collect();
        let mut jump_targets: Vec<usize> = (0..rng.index(4))
            .map(|_| rng.index(20) % n)
            .filter(|&t| t != 0)
            .collect();
        jump_targets.sort_unstable();
        jump_targets.dedup();
        // Jump operations must point inside the program for decode
        // equality; rewrite targets.
        for instr in &mut instrs {
            for slot in &mut instr.slots {
                if let tm3270_isa::Slot::Single(op) = slot {
                    if op.opcode.is_jump() && op.opcode.signature().imm {
                        op.imm %= n as i32;
                        if op.imm != 0 && !jump_targets.contains(&(op.imm as usize)) {
                            jump_targets.push(op.imm as usize);
                        }
                    }
                }
            }
        }
        jump_targets.sort_unstable();
        jump_targets.dedup();
        let program = Program {
            instrs,
            jump_targets,
        };
        let image = encode_program(&program).expect("encodable");
        let decoded = decode_program(&image).expect("decodable");
        assert_eq!(decoded, program);
    }
}

/// Schedule a deterministic pseudo-random dataflow program.
fn random_kernel(seed: u64) -> Program {
    let model = IssueModel::tm3270();
    let mut b = ProgramBuilder::new(model);
    let mut x = seed.wrapping_mul(0x9e37_79b9) | 1;
    let mut next = || {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        (x >> 33) as u32
    };
    for _ in 0..30 {
        let d = Reg::new(2 + (next() % 30) as u8);
        let s1 = Reg::new(2 + (next() % 30) as u8);
        let s2 = Reg::new(2 + (next() % 30) as u8);
        match next() % 4 {
            0 => {
                b.op(Op::rrr(Opcode::Iadd, d, s1, s2));
            }
            1 => {
                b.op(Op::rrr(Opcode::Quadavg, d, s1, s2));
            }
            2 => {
                b.op(Op::imm(d, (next() % 1000) as i32));
            }
            _ => {
                b.op(Op::rri(Opcode::Ld32d, d, s1, (next() % 64) as i32 * 4));
            }
        }
    }
    b.build().expect("schedulable")
}

#[test]
fn scheduled_kernels_round_trip() {
    for seed in 0u64..50 {
        let program = random_kernel(seed);
        let image = encode_program(&program).expect("encodable");
        assert_eq!(decode_program(&image).expect("decodable"), program);
    }
}

#[test]
fn empty_and_max_size_bounds_hold() {
    // Every instruction in any program is between 0 and 29 bytes
    // (10-bit own template + 10-bit next template + 5 x 42 bits).
    for n in 1usize..30 {
        let program = Program {
            instrs: vec![Instr::nop(); n],
            jump_targets: vec![],
        };
        let image = encode_program(&program).unwrap();
        for i in 0..n {
            assert!(image.instr_size(i) <= 29);
        }
    }
}

/// Satellite property of the fault-injection harness: a single-bit flip
/// anywhere in an encoded image either decodes to a (possibly different)
/// valid program or returns a typed decode error — never a panic. Checked
/// exhaustively over every bit of several images; a sampled subset is
/// additionally driven through `Machine::from_image` and a bounded run,
/// which must end in a normal halt or a typed `SimError`.
#[test]
fn single_bit_corruption_never_panics() {
    let mut rng = SmallRng::new(0xc0_44u64);
    let mut config = MachineConfig::tm3270();
    config.mem.mem_size = 1 << 16; // keep per-flip machines cheap
    let mut decoded_ok = 0u64;
    let mut decode_err = 0u64;
    for seed in 0..4u64 {
        let program = random_kernel(seed);
        let image = encode_program(&program).unwrap();
        for byte in 0..image.bytes.len() {
            for bit in 0..8 {
                let mut corrupt = image.clone();
                corrupt.bytes[byte] ^= 1 << bit;
                match decode_program_detailed(&corrupt) {
                    Ok(decoded) => {
                        decoded_ok += 1;
                        // Whatever it decoded to is a well-formed program:
                        // it must re-encode.
                        encode_program(&decoded).expect("decoded programs re-encode");
                    }
                    Err(fault) => {
                        decode_err += 1;
                        assert!(
                            fault.instr < program.instrs.len() + 1,
                            "fault location sane"
                        );
                    }
                }
                if rng.chance(1, 32) {
                    // Bounded simulation of the corrupted image: typed
                    // errors only, no panic, no hang.
                    if let Ok(mut machine) = Machine::from_image(config.clone(), corrupt) {
                        machine.set_watchdog(10_000);
                        let _ = machine.run_with(RunOptions::budget(20_000)).into_result();
                    }
                }
            }
        }
    }
    // The corruption space is genuinely mixed: both outcomes occur.
    assert!(decoded_ok > 0, "some flips still decode");
    assert!(decode_err > 0, "some flips are rejected");
}

/// Random multi-bit corruption and truncation (the original fuzz shape),
/// now through the `FaultInjector` used by the campaign binary.
#[test]
fn decode_survives_corruption() {
    let mut injector = FaultInjector::new(0xdead_beef);
    for seed in 0u64..40 {
        let program = random_kernel(seed);
        for _ in 0..6 {
            let mut image = encode_program(&program).unwrap();
            let flips = injector.rng().below(8) as u32;
            injector.corrupt_image(&mut image, flips);
            if injector.rng().chance(1, 4) {
                injector.truncate_image(&mut image);
            }
            // Must not panic.
            let _ = decode_program(&image);
        }
    }
    // The injector logged every flip it made against the image stream.
    assert!(injector
        .log()
        .iter()
        .all(|rec| rec.site == FaultSite::InstrStream));
}
