//! Property test: the VLIW compression encode/decode round-trip is exact
//! for arbitrary scheduled programs, including jump targets, two-slot
//! operations, guarded operations and immediates at the format
//! boundaries.

use proptest::prelude::*;
use tm3270_asm::ProgramBuilder;
use tm3270_encode::{decode_program, encode_program};
use tm3270_isa::{Instr, IssueModel, Op, Opcode, Program, Reg};

fn any_reg() -> impl Strategy<Value = Reg> {
    (0u8..128).prop_map(Reg::new)
}

fn writable_reg() -> impl Strategy<Value = Reg> {
    (2u8..128).prop_map(Reg::new)
}

/// Single-slot operations across every encoding format.
fn single_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (writable_reg(), any_reg(), any_reg(), any_reg())
            .prop_map(|(d, s1, s2, g)| Op::rrr(Opcode::Iadd, d, s1, s2).with_guard(g)),
        (writable_reg(), any_reg()).prop_map(|(d, s)| Op::rr(Opcode::Bitinv, d, s)),
        (writable_reg(), -(1i32 << 25)..(1 << 25)).prop_map(|(d, v)| Op::imm(d, v)),
        (writable_reg(), any_reg(), -2048i32..2048)
            .prop_map(|(d, s, v)| Op::rri(Opcode::Ld32d, d, s, v)),
        (any_reg(), any_reg(), any_reg(), -2048i32..2048)
            .prop_map(|(g, s1, s2, v)| Op::new(Opcode::St16d, g, &[s1, s2], &[], v)),
        (any_reg(), 0i32..1000).prop_map(|(g, t)| Op::new(Opcode::Jmpt, g, &[], &[], t)),
    ]
}

fn two_slot_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (
            any_reg(),
            any_reg(),
            any_reg(),
            any_reg(),
            any_reg(),
            writable_reg(),
            writable_reg()
        )
            .prop_map(|(g, s1, s2, s3, s4, d1, d2)| Op::new(
                Opcode::SuperDualimix,
                g,
                &[s1, s2, s3, s4],
                &[d1, d2],
                0
            )),
        (any_reg(), any_reg(), any_reg(), writable_reg(), writable_reg()).prop_map(
            |(g, s1, s2, d1, d2)| Op::new(Opcode::SuperLd32r, g, &[s1, s2], &[d1, d2], 0)
        ),
        (any_reg(), any_reg(), any_reg(), any_reg(), writable_reg(), writable_reg()).prop_map(
            |(g, s1, s2, s3, d1, d2)| Op::new(
                Opcode::SuperCabacStr,
                g,
                &[s1, s2, s3],
                &[d1, d2],
                0
            )
        ),
    ]
}

/// An arbitrary instruction: random ops placed in random non-conflicting
/// slots.
fn any_instr() -> impl Strategy<Value = Instr> {
    (
        prop::collection::vec((single_op(), 0usize..5), 0..4),
        prop::option::of((two_slot_op(), 0usize..2)),
    )
        .prop_map(|(singles, two)| {
            let mut instr = Instr::nop();
            if let Some((op, anchor)) = two {
                // Anchor at slot 1 or 3 (the only legal anchors).
                let slot = if anchor == 0 { 1 } else { 3 };
                instr.place(op, slot);
            }
            for (op, slot) in singles {
                let can_jump = !op.opcode.is_jump() || (1..=3).contains(&slot);
                if !instr.slots[slot].is_used() && can_jump {
                    instr.place(op, slot);
                }
            }
            instr
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn arbitrary_programs_round_trip(
        instrs in prop::collection::vec(any_instr(), 1..20),
        raw_targets in prop::collection::vec(0usize..20, 0..4),
    ) {
        let n = instrs.len();
        let mut jump_targets: Vec<usize> =
            raw_targets.into_iter().map(|t| t % n).filter(|&t| t != 0).collect();
        jump_targets.sort_unstable();
        jump_targets.dedup();
        // Jump operations must point inside the program for decode
        // equality; rewrite targets.
        let mut instrs = instrs;
        for instr in &mut instrs {
            for slot in &mut instr.slots {
                if let tm3270_isa::Slot::Single(op) = slot {
                    if op.opcode.is_jump() && op.opcode.signature().imm {
                        op.imm %= n as i32;
                        if op.imm != 0 && !jump_targets.contains(&(op.imm as usize)) {
                            jump_targets.push(op.imm as usize);
                        }
                    }
                }
            }
        }
        jump_targets.sort_unstable();
        jump_targets.dedup();
        let program = Program { instrs, jump_targets };
        let image = encode_program(&program).expect("encodable");
        let decoded = decode_program(&image).expect("decodable");
        prop_assert_eq!(decoded, program);
    }

    #[test]
    fn scheduled_kernels_round_trip(seed in 0u64..50) {
        // Schedule a deterministic pseudo-random dataflow program and
        // round-trip its image.
        let model = IssueModel::tm3270();
        let mut b = ProgramBuilder::new(model);
        let mut x = seed.wrapping_mul(0x9e37_79b9) | 1;
        let mut next = || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            (x >> 33) as u32
        };
        for _ in 0..30 {
            let d = Reg::new(2 + (next() % 30) as u8);
            let s1 = Reg::new(2 + (next() % 30) as u8);
            let s2 = Reg::new(2 + (next() % 30) as u8);
            match next() % 4 {
                0 => { b.op(Op::rrr(Opcode::Iadd, d, s1, s2)); },
                1 => { b.op(Op::rrr(Opcode::Quadavg, d, s1, s2)); },
                2 => { b.op(Op::imm(d, (next() % 1000) as i32)); },
                _ => { b.op(Op::rri(Opcode::Ld32d, d, s1, (next() % 64) as i32 * 4)); },
            }
        }
        let program = b.build().expect("schedulable");
        let image = encode_program(&program).expect("encodable");
        prop_assert_eq!(decode_program(&image).expect("decodable"), program);
    }

    #[test]
    fn empty_and_max_size_bounds_hold(n in 1usize..30) {
        // Every instruction in any program is between 0 and 29 bytes
        // (10-bit own template + 10-bit next template + 5 x 42 bits).
        let program = Program {
            instrs: vec![Instr::nop(); n],
            jump_targets: vec![],
        };
        let image = encode_program(&program).unwrap();
        for i in 0..n {
            prop_assert!(image.instr_size(i) <= 29);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Decoding never panics on corrupted or truncated images: it either
    /// returns a (possibly different) program or a structured error.
    #[test]
    fn decode_survives_corruption(
        seed in 0u64..40,
        flips in prop::collection::vec((0usize..4096, 0u8..8), 0..8),
        truncate in 0usize..64,
    ) {
        // Build a real image first.
        let model = IssueModel::tm3270();
        let mut b = ProgramBuilder::new(model);
        let mut x = seed.wrapping_mul(0x517c_c1b7) | 1;
        let mut next = || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            (x >> 33) as u32
        };
        for _ in 0..20 {
            let d = Reg::new(2 + (next() % 40) as u8);
            let s1 = Reg::new(2 + (next() % 40) as u8);
            b.op(Op::rrr(Opcode::Quadavg, d, s1, Reg::new(2)));
        }
        let program = b.build().unwrap();
        let mut image = encode_program(&program).unwrap();
        // Corrupt it.
        for (pos, bit) in flips {
            if !image.bytes.is_empty() {
                let idx = pos % image.bytes.len();
                image.bytes[idx] ^= 1 << bit;
            }
        }
        let keep = image.bytes.len().saturating_sub(truncate);
        image.bytes.truncate(keep);
        // Must not panic.
        let _ = decode_program(&image);
    }
}
