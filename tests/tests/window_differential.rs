//! Line-resident window differential suite: the `MemorySystem` window
//! API must be indistinguishable from the full access path.
//!
//! The fused engine's fast path rests on one claim: a load or store
//! serviced raw inside an open [`LineWindow`] — flat-memory bytes plus
//! the indexed `window_hit_load` / `window_hit_store` shortcuts — has
//! *bit-identical* architectural effect to routing the same access
//! through `begin_instr` / `load_le` / `store_le` / `take_stall`. This
//! suite attacks that claim from below the engine:
//!
//! 1. **Seeded differential** — two `MemorySystem` instances consume
//!    the same 10 000-op random stream; one takes the full path for
//!    every access, the other services same-line hits through windows
//!    with the fused engine's open/revalidate/latch discipline. Loaded
//!    values, per-instruction stalls, the shape epoch, every statistics
//!    counter and the final memory image must agree at every step —
//!    through cache-control ops, line-crossing accesses, eviction
//!    pressure and a prefetch-armed phase in the middle of the stream.
//! 2. **Revocation edges** — each window-killing event in isolation:
//!    flush, invalidate, eviction, prefetch arming, and the
//!    allocate-on-write-miss partial line that must refuse to open.
//! 3. **Engine engagement** — on the fastest evaluation machine the
//!    fused engine's windows actually engage (telemetry `window_hits`),
//!    the churn gate actually trips on mpeg2, and both remain
//!    bit-identical to the forced-fallback engine across budget seams.

use tm3270_core::{Machine, MachineConfig, RunOptions, SimError};
use tm3270_fault::SmallRng;
use tm3270_isa::{CacheOp, DataMemory};
use tm3270_kernels::registry;
use tm3270_mem::{LineWindow, MemConfig, MemorySystem, Region};

/// Window-set capacity, mirroring the fused engine's.
const NWIN: usize = 4;
/// "No window" sentinel: line bases are line-aligned, 1 never is.
const NO_LINE: u32 = 1;

/// A `MemorySystem` driven through the window API with the fused
/// engine's discipline: open only under proof, re-validate after any
/// epoch movement or loss of prefetch quiescence, service same-line
/// hits raw, and route everything else through the full path.
struct Windowed {
    mem: MemorySystem,
    line: u32,
    wbase: [u32; NWIN],
    widx: [u32; NWIN],
    wnext: usize,
    epoch: u64,
    /// Accesses serviced inside a window (vacuity guard).
    hits: u64,
    /// Windows dropped for any reason (vacuity guard).
    revoked: u64,
}

impl Windowed {
    fn new(config: MemConfig) -> Windowed {
        let mem = MemorySystem::new(config);
        let line = mem.config().dcache.line;
        let epoch = mem.dcache_epoch();
        Windowed {
            mem,
            line,
            wbase: [NO_LINE; NWIN],
            widx: [0; NWIN],
            wnext: 0,
            epoch,
            hits: 0,
            revoked: 0,
        }
    }

    /// Whether an access is confined to a single cache line — the
    /// shape precondition for window service.
    fn line_resident(&self, addr: u32, len: u32) -> bool {
        (addr & (self.line - 1)) + len <= self.line
    }

    /// Re-proves every open window, exactly as the fused engine does
    /// before trusting one after full-model activity: losing prefetch
    /// quiescence drops the whole set; a shape-epoch move re-validates
    /// each window by indexed tag compare and drops the failures.
    fn revalidate(&mut self) {
        if !self.mem.prefetch_quiescent() {
            for k in 0..NWIN {
                if self.wbase[k] != NO_LINE {
                    self.wbase[k] = NO_LINE;
                    self.revoked += 1;
                }
            }
            return;
        }
        let epoch = self.mem.dcache_epoch();
        if epoch != self.epoch {
            for k in 0..NWIN {
                if self.wbase[k] != NO_LINE
                    && !self.mem.window_revalidate(self.widx[k], self.wbase[k])
                {
                    self.wbase[k] = NO_LINE;
                    self.revoked += 1;
                }
            }
            self.epoch = epoch;
        }
    }

    fn scan(&self, addr: u32, len: u32) -> Option<usize> {
        if !self.line_resident(addr, len) {
            return None;
        }
        let base = addr & !(self.line - 1);
        (0..NWIN).find(|&k| self.wbase[k] == base)
    }

    /// Tries to open a window over the line just touched by a
    /// full-path access (the fused engine's latch). Must be called
    /// with windows freshly re-validated so the tracked epoch is
    /// current before the open is recorded against it.
    fn latch(&mut self, addr: u32, len: u32) {
        if !self.line_resident(addr, len) {
            return;
        }
        let base = addr & !(self.line - 1);
        if self.wbase.contains(&base) {
            return;
        }
        if let Some(w) = self.mem.try_open_window(base) {
            let LineWindow {
                base: wb,
                len: wl,
                line_index,
                hit_stall_cycles,
                dirty: _,
            } = w;
            assert_eq!((wb, wl), (base, self.line), "window shape");
            assert_eq!(hit_stall_cycles, 0, "hits are fully pipelined");
            let slot = (0..NWIN)
                .find(|&k| self.wbase[k] == NO_LINE)
                .unwrap_or_else(|| {
                    let s = self.wnext;
                    self.wnext = (s + 1) % NWIN;
                    self.revoked += 1;
                    s
                });
            self.wbase[slot] = base;
            self.widx[slot] = line_index;
            self.epoch = self.mem.dcache_epoch();
        }
    }

    fn load(&mut self, now: u64, addr: u32, len: u32) -> (u32, u64) {
        self.revalidate();
        if let Some(k) = self.scan(addr, len) {
            self.mem.set_now(now);
            self.mem.window_hit_load(self.widx[k]);
            self.hits += 1;
            return (self.mem.window_load_le(addr, len as usize), 0);
        }
        self.mem.begin_instr(now);
        let value = self.mem.load_le(addr, len as usize);
        let stall = self.mem.take_stall();
        self.latch(addr, len);
        (value, stall)
    }

    fn store(&mut self, now: u64, addr: u32, len: u32, value: u32) -> u64 {
        self.revalidate();
        if let Some(k) = self.scan(addr, len) {
            self.mem.set_now(now);
            self.mem.window_store_le(addr, len as usize, value);
            self.hits += 1;
            return u64::from(self.mem.window_hit_store(self.widx[k], 0.0));
        }
        self.mem.begin_instr(now);
        self.mem.store_le(addr, len as usize, value);
        let stall = self.mem.take_stall();
        self.latch(addr, len);
        stall
    }

    fn cache_op(&mut self, now: u64, op: CacheOp, addr: u32) -> u64 {
        self.revalidate();
        self.mem.begin_instr(now);
        self.mem.cache_op(op, addr);
        self.mem.take_stall()
    }
}

/// Full-path reference step: every access through
/// `begin_instr` / trait access / `take_stall`.
fn ref_load(mem: &mut MemorySystem, now: u64, addr: u32, len: u32) -> (u32, u64) {
    mem.begin_instr(now);
    let value = mem.load_le(addr, len as usize);
    (value, mem.take_stall())
}

fn ref_store(mem: &mut MemorySystem, now: u64, addr: u32, len: u32, value: u32) -> u64 {
    mem.begin_instr(now);
    mem.store_le(addr, len as usize, value);
    mem.take_stall()
}

fn ref_cache_op(mem: &mut MemorySystem, now: u64, op: CacheOp, addr: u32) -> u64 {
    mem.begin_instr(now);
    mem.cache_op(op, addr);
    mem.take_stall()
}

/// Base of the working arena. Line-aligned, far from address zero.
const ARENA: u32 = 0x8000;
/// Arena span: 32 KiB — one line per data-cache set on the TM3270
/// geometry, so set-conflict pressure comes only from the aliases.
const ARENA_LEN: u32 = 0x8000;
/// Same-set aliases of the arena (128 KiB apart on both geometries):
/// enough to overflow 4-way associativity and force evictions.
const ALIAS_STRIDE: u32 = 0x20000;

fn differential(config: MemConfig, seed: u64, steps: u64) {
    let label = format!("{} seed {seed}", config_label(&config));
    let mut rng = SmallRng::new(seed);
    let mut reference = MemorySystem::new(config.clone());
    let mut windowed = Windowed::new(config);
    let line = windowed.line;
    let arm_at = steps / 3;
    let disarm_at = 2 * steps / 3;
    let mut hits_at_disarm = 0;
    let mut now = 0u64;

    for step in 0..steps {
        // A prefetch-armed phase in the middle of the stream: windows
        // must refuse to open and the set must drop, while the two
        // models keep consuming the identical op stream.
        if step == arm_at {
            let r = Region {
                start: ARENA,
                end: ARENA + ARENA_LEN,
                stride: line,
            };
            reference.set_prefetch_region(0, r);
            windowed.mem.set_prefetch_region(0, r);
        }
        if step == disarm_at {
            let off = Region {
                start: 0,
                end: 0,
                stride: 0,
            };
            reference.set_prefetch_region(0, off);
            windowed.mem.set_prefetch_region(0, off);
            hits_at_disarm = windowed.hits;
        }
        if step > arm_at && step < disarm_at {
            assert!(
                windowed.mem.try_open_window(ARENA).is_none(),
                "{label}: window opened while the prefetch unit was armed"
            );
        }

        let len = [1u32, 2, 4][rng.below(3) as usize];
        let hot = ARENA + (rng.below(6) as u32) * line + (rng.below(u64::from(line - 4)) as u32);
        let (r_stall, w_stall) = match rng.below(100) {
            // Hot-line traffic: six lines, so the four-slot window set
            // keeps replacing and the bulk of accesses hit.
            0..=44 => {
                let (rv, rs) = ref_load(&mut reference, now, hot, len);
                let (wv, ws) = windowed.load(now, hot, len);
                assert_eq!(rv, wv, "{label} step {step}: load value at {hot:#x}");
                (rs, ws)
            }
            45..=74 => {
                let v = rng.next_u32();
                (
                    ref_store(&mut reference, now, hot, len, v),
                    windowed.store(now, hot, len, v),
                )
            }
            // Line-crossing loads: never window-eligible, always full
            // path on both models.
            75..=81 => {
                let addr =
                    ARENA + (rng.below(u64::from(ARENA_LEN / line) - 1) as u32) * line + (line - 2);
                let (rv, rs) = ref_load(&mut reference, now, addr, 4);
                let (wv, ws) = windowed.load(now, addr, 4);
                assert_eq!(rv, wv, "{label} step {step}: crossing load at {addr:#x}");
                (rs, ws)
            }
            // Same-set aliases: eviction pressure, shape-epoch churn,
            // revocation of windows whose lines get victimised.
            82..=87 => {
                let addr =
                    ARENA + (1 + rng.below(8) as u32) * ALIAS_STRIDE + (rng.below(6) as u32) * line;
                let (rv, rs) = ref_load(&mut reference, now, addr, 4);
                let (wv, ws) = windowed.load(now, addr, 4);
                assert_eq!(rv, wv, "{label} step {step}: alias load at {addr:#x}");
                (rs, ws)
            }
            // Cache-control ops over the hot lines: flush and
            // invalidate revoke, allocate and software prefetch churn
            // the shape and the prefetch queue.
            88..=91 => {
                let op = [
                    CacheOp::Flush,
                    CacheOp::Invalidate,
                    CacheOp::Allocate,
                    CacheOp::Prefetch,
                ][rng.below(4) as usize];
                let addr = ARENA + (rng.below(6) as u32) * line;
                (
                    ref_cache_op(&mut reference, now, op, addr),
                    windowed.cache_op(now, op, addr),
                )
            }
            // Cold wandering loads over the whole arena.
            _ => {
                let addr = ARENA + (rng.below(u64::from(ARENA_LEN - 4)) as u32);
                let (rv, rs) = ref_load(&mut reference, now, addr, len);
                let (wv, ws) = windowed.load(now, addr, len);
                assert_eq!(rv, wv, "{label} step {step}: arena load at {addr:#x}");
                (rs, ws)
            }
        };
        assert_eq!(r_stall, w_stall, "{label} step {step}: stall cycles");
        assert_eq!(
            reference.dcache_epoch(),
            windowed.mem.dcache_epoch(),
            "{label} step {step}: shape epoch"
        );
        if step % 509 == 0 {
            assert_eq!(
                reference.stats(),
                windowed.mem.stats(),
                "{label} step {step}: statistics"
            );
        }
        now += 1 + r_stall;
    }

    // Final state: every statistic and the full arena memory image.
    assert_eq!(
        reference.stats(),
        windowed.mem.stats(),
        "{label}: final stats"
    );
    let mut ref_img = vec![0u8; ARENA_LEN as usize];
    let mut win_img = vec![0u8; ARENA_LEN as usize];
    reference.flat().read_into(ARENA, &mut ref_img);
    windowed.mem.flat().read_into(ARENA, &mut win_img);
    assert_eq!(ref_img, win_img, "{label}: final memory image");

    // Vacuity guards: the stream must actually have exercised window
    // service, revocation, and re-engagement after the prefetch phase.
    assert!(
        windowed.hits > steps / 10,
        "{label}: only {} window hits in {steps} ops — windows never engaged",
        windowed.hits
    );
    assert!(windowed.revoked > 0, "{label}: no window was ever revoked");
    assert!(
        windowed.hits > hits_at_disarm,
        "{label}: windows never re-engaged after the prefetch phase"
    );
}

fn config_label(config: &MemConfig) -> &'static str {
    if config.allocate_on_write_miss {
        "tm3270"
    } else {
        "tm3260"
    }
}

/// 10 000 random ops per (geometry, seed) cell: loads, stores,
/// line-crossers, same-set eviction pressure, cache-control ops and a
/// prefetch-armed middle phase — window service must be bit-identical
/// to the full path throughout.
#[test]
fn seeded_stream_is_bit_identical_to_full_path() {
    for seed in 1..=3 {
        differential(MemConfig::tm3270(), seed, 10_000);
        differential(MemConfig::tm3260(), seed, 10_000);
    }
}

/// Opens a window over `addr`'s line by demand-loading it through the
/// full path first.
fn open_over(mem: &mut MemorySystem, now: u64, addr: u32) -> LineWindow {
    ref_load(mem, now, addr, 4);
    mem.try_open_window(addr)
        .expect("line is resident and fully valid after a demand load")
}

/// Flush and invalidate both bump the shape epoch and fail the
/// window's indexed re-validation; an unrelated line fill bumps the
/// epoch but the window survives re-validation.
#[test]
fn flush_and_invalidate_revoke_windows() {
    let mut mem = MemorySystem::new(MemConfig::tm3270());
    let line = mem.config().dcache.line;

    let w = open_over(&mut mem, 0, ARENA);
    let epoch = mem.dcache_epoch();

    // A fill elsewhere moves the epoch; the window must re-validate.
    ref_load(&mut mem, 1, ARENA + 64 * line, 4);
    assert_ne!(mem.dcache_epoch(), epoch, "fill did not move the epoch");
    assert!(
        mem.window_revalidate(w.line_index, w.base),
        "window failed re-validation across an unrelated fill"
    );

    // Flush removes the line: re-validation must fail.
    let epoch = mem.dcache_epoch();
    mem.begin_instr(2);
    mem.cache_op(CacheOp::Flush, ARENA);
    mem.take_stall();
    assert_ne!(mem.dcache_epoch(), epoch, "flush did not move the epoch");
    assert!(
        !mem.window_revalidate(w.line_index, w.base),
        "window survived a flush of its line"
    );
    assert!(
        mem.try_open_window(ARENA).is_none(),
        "reopened over a flushed line"
    );

    // Same story for invalidate on a fresh line.
    let w = open_over(&mut mem, 3, ARENA + line);
    mem.begin_instr(4);
    mem.cache_op(CacheOp::Invalidate, ARENA + line);
    mem.take_stall();
    assert!(
        !mem.window_revalidate(w.line_index, w.base),
        "window survived an invalidate of its line"
    );
}

/// Overflowing the set with same-set aliases evicts the windowed line;
/// the stale index must fail re-validation even though the slot now
/// holds a different (fully valid) line.
#[test]
fn eviction_revokes_the_windows_line() {
    let mut mem = MemorySystem::new(MemConfig::tm3270());
    let ways = mem.config().dcache.ways;
    let w = open_over(&mut mem, 0, ARENA);
    for k in 1..=ways {
        ref_load(&mut mem, u64::from(k), ARENA + k * ALIAS_STRIDE, 4);
    }
    assert!(
        !mem.window_revalidate(w.line_index, w.base),
        "window survived eviction of its line"
    );
}

/// Arming a prefetch region ends quiescence: no window opens while the
/// unit is armed or still draining, and service resumes only once it
/// is provably quiescent again.
#[test]
fn prefetch_arming_refuses_windows_until_quiescent() {
    let mut mem = MemorySystem::new(MemConfig::tm3270());
    let line = mem.config().dcache.line;
    assert!(open_over(&mut mem, 0, ARENA).base == ARENA);

    mem.set_prefetch_region(
        0,
        Region {
            start: ARENA,
            end: ARENA + ARENA_LEN,
            stride: line,
        },
    );
    assert!(
        !mem.prefetch_quiescent(),
        "armed region left the unit quiescent"
    );
    assert!(
        mem.try_open_window(ARENA).is_none(),
        "window opened while the prefetch unit was armed"
    );

    // Trigger observations, then disarm and drain: quiescence — and
    // with it window service — must come back.
    let mut now = 1u64;
    for k in 0..8u32 {
        let (_, stall) = ref_load(&mut mem, now, ARENA + k * line, 4);
        now += 1 + stall;
    }
    mem.set_prefetch_region(
        0,
        Region {
            start: 0,
            end: 0,
            stride: 0,
        },
    );
    for _ in 0..10_000 {
        if mem.prefetch_quiescent() {
            break;
        }
        mem.begin_instr(now);
        mem.take_stall();
        now += 1;
    }
    assert!(mem.prefetch_quiescent(), "prefetch unit never drained");
    // The prefetched bit keeps untouched prefetched lines closed; a
    // demand-touched line opens again.
    ref_load(&mut mem, now, ARENA, 4);
    assert!(
        mem.try_open_window(ARENA).is_some(),
        "window refused after quiescence returned"
    );
}

/// On the TM3270 (allocate-on-write-miss) a store miss leaves the line
/// partially valid: no window may open until a demand load fills the
/// remaining bytes.
#[test]
fn partially_valid_allocation_refuses_a_window() {
    let mut mem = MemorySystem::new(MemConfig::tm3270());
    let mut now = 0u64;
    let stall = ref_store(&mut mem, now, ARENA, 4, 0xdead_beef);
    now += 1 + stall;
    assert!(
        mem.try_open_window(ARENA).is_none(),
        "window opened over a partially valid allocate-on-write line"
    );
    // A load of the written bytes hits without filling the rest.
    let (v, stall) = ref_load(&mut mem, now, ARENA, 4);
    now += 1 + stall;
    assert_eq!(v, 0xdead_beef);
    assert!(
        mem.try_open_window(ARENA).is_none(),
        "window opened while invalid bytes remained"
    );
    // A load of the unwritten bytes forces the fill: now fully valid.
    ref_load(&mut mem, now, ARENA + 64, 4);
    assert!(
        mem.try_open_window(ARENA).is_some(),
        "window refused after the line filled"
    );
}

/// Builds the machine for one (workload, config) cell with kernel setup.
fn build_cell(workload: &tm3270_kernels::Workload, config: &MachineConfig) -> Machine {
    let program = workload.build(&config.issue).unwrap();
    let mut m = Machine::new(config.clone(), program).unwrap();
    workload.kernel().setup(&mut m);
    m
}

fn config_d() -> MachineConfig {
    tm3270_session::config_named("d").expect("config d exists")
}

/// On the fastest evaluation machine the windows actually engage
/// (filter holds a long-lived window set; mpeg2 trips the churn gate
/// with real revocations) and the fused run stays bit-identical to the
/// forced-fallback engine — stats, register digest and snapshot bytes.
#[test]
fn engaged_windows_stay_bit_identical_to_fallback() {
    let config = config_d();
    for (name, expect_hits) in [("filter", true), ("mpeg2_a", false)] {
        let registry = registry(1);
        let workload = registry
            .iter()
            .find(|w| w.name() == name)
            .unwrap_or_else(|| panic!("{name} missing from registry"));
        let cell = format!("{name} on {}", config.name);

        let mut fused = build_cell(workload, &config);
        let fused_stats = fused
            .run_with(RunOptions::budget(workload.cycle_budget()))
            .into_result()
            .unwrap_or_else(|e| panic!("{cell}: {e}"));
        let tele = fused.engine_telemetry();
        assert!(tele.mem_calls > 0, "{cell}: no full-path memory calls");
        if expect_hits {
            assert!(tele.window_hits > 0, "{cell}: windows never engaged");
        }
        assert!(tele.window_revocations > 0, "{cell}: windows never closed");

        let mut fallback = build_cell(workload, &config);
        fallback.set_force_fallback(true);
        let fb_stats = fallback
            .run_with(RunOptions::budget(workload.cycle_budget()))
            .into_result()
            .unwrap_or_else(|e| panic!("{cell}: fallback: {e}"));
        assert_eq!(
            fallback.engine_telemetry().window_hits,
            0,
            "{cell}: fallback hit"
        );

        assert_eq!(fb_stats, fused_stats, "{cell}: stats diverged");
        assert_eq!(fallback.reg_digest(), fused.reg_digest(), "{cell}: digest");
        assert_eq!(
            fallback.snapshot().into_bytes(),
            fused.snapshot().into_bytes(),
            "{cell}: snapshot bytes"
        );
        workload
            .kernel()
            .verify(&fused)
            .unwrap_or_else(|e| panic!("{cell}: verify failed: {e}"));
    }
}

/// Budget seams flush the window set mid-run (seam revocation): a
/// window-engaging kernel sliced at a coprime quantum must complete
/// bit-identically to an uninterrupted run on the same config.
#[test]
fn budget_seams_through_engaged_windows_are_bit_identical() {
    let config = config_d();
    let registry = registry(1);
    let workload = registry
        .iter()
        .find(|w| w.name() == "filter")
        .expect("filter in registry");
    let cell = format!("filter on {}", config.name);

    let mut reference = build_cell(workload, &config);
    let ref_stats = reference
        .run_with(RunOptions::budget(workload.cycle_budget()))
        .into_result()
        .unwrap_or_else(|e| panic!("{cell}: {e}"));
    assert!(
        reference.engine_telemetry().window_hits > 0,
        "{cell}: windows never engaged"
    );

    let mut sliced = build_cell(workload, &config);
    let quantum = 997u64;
    let mut budget = quantum;
    let stats = loop {
        match sliced.run_with(RunOptions::budget(budget)).into_result() {
            Ok(stats) => break stats,
            Err(SimError::CycleLimit { .. }) => {
                assert!(
                    budget < workload.cycle_budget(),
                    "{cell}: exceeded the kernel cycle budget"
                );
                budget = (budget + quantum).min(workload.cycle_budget());
            }
            Err(e) => panic!("{cell}: {e}"),
        }
    };
    assert_eq!(stats, ref_stats, "{cell}: stats, quantum {quantum}");
    assert_eq!(
        sliced.reg_digest(),
        reference.reg_digest(),
        "{cell}: digest"
    );
    assert_eq!(
        sliced.snapshot().into_bytes(),
        reference.snapshot().into_bytes(),
        "{cell}: snapshot bytes"
    );
}
