//! Cross-validation of the three CABAC implementations: the reference
//! encoder/decoder pair (`tm3270-cabac`), the `SUPER_CABAC_*` operation
//! semantics (`tm3270-isa`), and full simulated decoding on the machine
//! (`tm3270-kernels`).

use tm3270_cabac::{Context, Decoder, Encoder, FieldType};
use tm3270_core::MachineConfig;
use tm3270_fault::SmallRng;
use tm3270_isa::cabac::{cabac_decode_step, CabacState};
use tm3270_isa::{execute, FlatMemory, Op, Opcode, Reg, RegFile};
use tm3270_kernels::cabac_kernel::CabacDecode;
use tm3270_kernels::run_kernel;

#[test]
fn encode_decode_round_trip_arbitrary_symbols() {
    let mut rng = SmallRng::new(0xcaba_c001);
    for _ in 0..64 {
        let symbols: Vec<bool> = (0..1 + rng.index(1999)).map(|_| rng.chance(1, 2)).collect();
        let state = rng.below(64) as u8;
        let mps = rng.chance(1, 2);
        let mut enc = Encoder::new();
        let mut ectx = Context::new(state, mps);
        for &b in &symbols {
            enc.encode(&mut ectx, b);
        }
        let bytes = enc.finish();
        let mut dec = Decoder::new(&bytes);
        let mut dctx = Context::new(state, mps);
        for (i, &b) in symbols.iter().enumerate() {
            assert_eq!(dec.decode(&mut dctx), b, "symbol {i}");
        }
        assert_eq!(dctx, ectx, "final adaptive context agrees");
    }
}

#[test]
fn super_ops_agree_with_reference_step() {
    let mut rng = SmallRng::new(0xcaba_c002);
    let mut cases = 0;
    while cases < 64 {
        // Keep the decoder invariants: range in [256, 511], value < range.
        let range = 256 + rng.below(255) as u16;
        let value = rng.below(512) as u16;
        if value >= range {
            continue;
        }
        cases += 1;
        let state = rng.below(64) as u8;
        let mps = rng.chance(1, 2);
        let stream = rng.next_u32();
        let pos = rng.below(8) as u32;
        let s = CabacState {
            value,
            range,
            state,
            mps,
        };
        let step = cabac_decode_step(s, stream, pos);

        // Execute the two-slot operations on the same inputs.
        let r = Reg::new;
        let mut rf = RegFile::new();
        rf.write(r(2), (u32::from(value) << 16) | u32::from(range));
        rf.write(r(3), pos);
        rf.write(r(4), stream);
        rf.write(r(5), (u32::from(state) << 16) | u32::from(mps));
        let mut mem = FlatMemory::new(4096);

        let ctx_op = Op::new(
            Opcode::SuperCabacCtx,
            Reg::ONE,
            &[r(2), r(3), r(4), r(5)],
            &[r(10), r(11)],
            0,
        );
        let res = execute(&ctx_op, &rf, &mut mem).expect("register-only op cannot fault");
        let vr = res.writes[0].unwrap().1;
        let sm = res.writes[1].unwrap().1;
        assert_eq!((vr >> 16) as u16, step.next.value);
        assert_eq!(vr as u16, step.next.range);
        assert_eq!((sm >> 16) as u8, step.next.state);
        assert_eq!(sm & 1 == 1, step.next.mps);

        let str_op = Op::new(
            Opcode::SuperCabacStr,
            Reg::ONE,
            &[r(2), r(3), r(5)],
            &[r(12), r(13)],
            0,
        );
        let res = execute(&str_op, &rf, &mut mem).expect("register-only op cannot fault");
        assert_eq!(res.writes[0].unwrap().1, step.stream_bit_position);
        assert_eq!(res.writes[1].unwrap().1 == 1, step.bit);
    }
}

#[test]
fn simulated_decoders_agree_with_reference_on_all_fields() {
    let cfg = MachineConfig::tm3270();
    for field in FieldType::all() {
        for optimized in [false, true] {
            let kernel = CabacDecode::table3(field, optimized, 1_500);
            // `run_kernel` verifies the decoded bit checksum and the
            // final context bank against the reference decoder.
            run_kernel(&kernel, &cfg).unwrap_or_else(|e| {
                panic!("{:?} optimized={optimized}: {e}", field);
            });
        }
    }
}

#[test]
fn optimized_and_plain_kernels_produce_identical_results() {
    // Both kernels store the identical rolling bit checksum.
    let cfg = MachineConfig::tm3270();
    let bits = 3_000;
    let a = run_kernel(&CabacDecode::table3(FieldType::P, false, bits), &cfg).unwrap();
    let b = run_kernel(&CabacDecode::table3(FieldType::P, true, bits), &cfg).unwrap();
    // Their instruction counts differ (that is Table 3), their decoded
    // output does not (verified inside run_kernel); sanity-check the
    // instruction relation here.
    assert!(a.instrs > b.instrs);
}
