//! Cross-crate workload smoke suite: every Table 5 kernel (at reduced
//! size) builds, runs, and verifies against its golden reference on all
//! four evaluation configurations, and the paper's headline qualitative
//! effects hold at small scale.

use tm3270_core::MachineConfig;
use tm3270_kernels::filter::HighPass;
use tm3270_kernels::memops::{Memcpy, Memset};
use tm3270_kernels::motion::MotionEst;
use tm3270_kernels::pixels::{Rgb2Cmyk, Rgb2Yiq, Rgb2Yuv};
use tm3270_kernels::synth::{BlockFilter, Mp3Proxy};
use tm3270_kernels::tv::{FilmDetect, MajoritySelect};
use tm3270_kernels::video::Mpeg2;
use tm3270_kernels::{run_kernel, Kernel};

fn small_suite() -> Vec<Box<dyn Kernel>> {
    vec![
        Box::new(Memset {
            size: 2048,
            value: 0x3c,
        }),
        Box::new(Memcpy {
            size: 2048,
            seed: 11,
        }),
        Box::new(HighPass {
            width: 40,
            height: 10,
            seed: 12,
        }),
        Box::new(Rgb2Yuv::with_pixels(128, 13)),
        Box::new(Rgb2Cmyk::with_pixels(128, 14)),
        Box::new(Rgb2Yiq::with_pixels(128, 15)),
        Box::new(Mpeg2::small(16, 16)),
        Box::new(FilmDetect {
            size: 2048,
            seed: 17,
        }),
        Box::new(MajoritySelect {
            size: 2048,
            seed: 18,
        }),
        Box::new(Mp3Proxy {
            words: 256,
            passes: 2,
            seed: 19,
        }),
        Box::new(MotionEst {
            optimized: false,
            candidates: 1,
            seed: 20,
        }),
    ]
}

#[test]
fn every_kernel_verifies_on_every_configuration() {
    for kernel in small_suite() {
        for config in MachineConfig::evaluation_suite() {
            run_kernel(kernel.as_ref(), &config)
                .unwrap_or_else(|e| panic!("{} on {}: {e}", kernel.name(), config.name));
        }
    }
}

#[test]
fn reports_contain_plausible_statistics() {
    for kernel in small_suite() {
        let stats = run_kernel(kernel.as_ref(), &MachineConfig::tm3270()).unwrap();
        assert!(stats.cycles >= stats.instrs, "{}", kernel.name());
        assert!(stats.exec_ops <= stats.ops, "{}", kernel.name());
        assert!(stats.opi() <= 5.0, "{}: OPI bound", kernel.name());
        assert!(stats.cpi() >= 1.0, "{}: CPI bound", kernel.name());
    }
}

#[test]
fn tm3270_specific_kernels_fail_to_build_for_tm3260() {
    let opt = MotionEst {
        optimized: true,
        candidates: 1,
        seed: 1,
    };
    assert!(run_kernel(&opt, &MachineConfig::tm3260()).is_err());
}

#[test]
fn write_miss_policy_shows_in_memcpy_traffic() {
    // Paper §6: the TM3270 generates less memory traffic on memcpy
    // (allocate-on-write-miss), the root of Figure 7's largest A-to-B
    // step.
    // Large enough that the 16 KB caches spill: steady-state traffic is
    // 3 bytes per copied byte on A vs 2 on B.
    let k = Memcpy {
        size: 32 * 1024,
        seed: 5,
    };
    let a = run_kernel(&k, &MachineConfig::config_a()).unwrap();
    let b = run_kernel(&k, &MachineConfig::config_b()).unwrap();
    let ratio = a.mem.dram.bytes as f64 / b.mem.dram.bytes as f64;
    assert!(
        (1.3..1.7).contains(&ratio),
        "traffic ratio {ratio:.2} ~ 1.5"
    );
}

#[test]
fn prefetch_keeps_block_processing_ahead_of_memory() {
    // Figure 3 at reduced size.
    let base = BlockFilter {
        width: 256,
        height: 32,
        prefetch: false,
        seed: 7,
    };
    let pf = BlockFilter {
        prefetch: true,
        ..base
    };
    let cfg = MachineConfig::tm3270();
    let s0 = run_kernel(&base, &cfg).unwrap();
    let s1 = run_kernel(&pf, &cfg).unwrap();
    assert!(s1.cycles < s0.cycles);
    assert!(s1.mem.prefetch.issued > 0);
    assert!(s1.mem.dcache.prefetch_hits > 0);
}

#[test]
fn deeper_pipeline_costs_show_in_tiny_loops() {
    // Paper §6: the TM3270's extra delay slots and load latency hurt CPI;
    // only frequency and the memory system win it back. A tiny
    // un-unrolled loop exposes the regression directly.
    use tm3270_asm::ProgramBuilder;
    use tm3270_core::Machine;
    use tm3270_isa::{Op, Opcode, Reg};
    let run = |config: MachineConfig| {
        let mut b = ProgramBuilder::new(config.issue);
        let r = Reg::new;
        b.op(Op::imm(r(2), 100));
        let top = b.bind_here();
        b.op(Op::rri(Opcode::Iaddi, r(2), r(2), -1));
        b.op(Op::rri(Opcode::Igtri, r(3), r(2), 0));
        b.jump_if(r(3), top);
        let mut m = Machine::new(config, b.build().unwrap()).unwrap();
        m.run_with(tm3270_core::RunOptions::budget(10_000_000))
            .into_result()
            .unwrap()
    };
    let a = run(MachineConfig::tm3260());
    let d = run(MachineConfig::tm3270());
    assert!(
        d.instrs > a.instrs,
        "5 vs 3 delay slots: more issued instructions on the TM3270"
    );
}
