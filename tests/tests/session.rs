//! Session-API and serving-front-end integration tests.
//!
//! The contract under test is the tentpole guarantee of the
//! simulation-as-a-service layer: a session driven through the stable
//! lifecycle (`create → load → step → snapshot → restore into a fresh
//! session → run to halt`) is **bit-identical** to a direct
//! `Machine::run_with` of the same workload — same statistics, same
//! register digest — whether the session lives in-process or behind the
//! `tm3270d` wire protocol. On top of that: malformed wire frames
//! degrade into typed error replies (never a panic, never a hang), N
//! concurrent server sessions reproduce the serial suite rows byte for
//! byte, a hot session cannot delay small-budget peers on a shared
//! worker, and graceful shutdown checkpoints live sessions through the
//! TM3S container.

use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::time::Instant;

use tm3270_core::{Machine, RunOptions, RunStats};
use tm3270_session::wire::{self, WireError, MAX_FRAME_BYTES, WIRE_MAGIC, WIRE_VERSION};
use tm3270_session::{
    config_named, Client, RunStatus, Server, ServerConfig, Session, SessionError, ShutdownHandle,
};

/// The three lifecycle workloads: smallest of the Table 5 golden set.
const LIFECYCLE_KERNELS: [&str; 3] = ["memset", "memcpy", "filter"];
const LIFECYCLE_CONFIGS: [&str; 2] = ["a", "d"];
const BUDGET: u64 = 200_000_000;
const SCALE: u64 = 20;

/// A direct, uninterrupted `Machine::run_with` of the named workload:
/// the reference every session path must reproduce exactly.
fn direct_run(config_name: &str, workload: &str) -> (RunStats, u64) {
    let config = config_named(config_name).expect("known config");
    let kernel = tm3270_kernels::find_workload(SCALE, workload)
        .expect("known workload")
        .into_kernel();
    let program = kernel.build(&config.issue).expect("kernel builds");
    let mut machine = Machine::new(config, program).expect("machine builds");
    kernel.setup(&mut machine);
    let stats = machine
        .run_with(RunOptions::budget(BUDGET))
        .into_result()
        .expect("direct run halts");
    kernel.verify(&machine).expect("direct run verifies");
    (stats, machine.reg_digest())
}

/// Binds a server on an ephemeral port and serves it on a thread.
fn start_server(
    config: ServerConfig,
) -> (
    SocketAddr,
    ShutdownHandle,
    std::thread::JoinHandle<tm3270_session::ServeReport>,
) {
    let server = Server::bind("127.0.0.1:0", config).expect("bind");
    let addr = server.local_addr().expect("local addr");
    let handle = server.shutdown_handle();
    let join = std::thread::spawn(move || server.serve().expect("serve"));
    (addr, handle, join)
}

/// The full in-process lifecycle, bit-identical to the direct run for
/// every (kernel, config) pair: create → load → step → snapshot →
/// restore into a *fresh* session → run to halt → verify.
#[test]
fn lifecycle_is_bit_identical_to_direct_run() {
    for config in LIFECYCLE_CONFIGS {
        for kernel in LIFECYCLE_KERNELS {
            let (direct_stats, direct_digest) = direct_run(config, kernel);

            let mut first = Session::create_named(config).expect("create");
            first.load_workload(SCALE, kernel).expect("load");
            first.step(64).expect("step");
            let snap = first.snapshot().expect("snapshot");

            let mut fresh = Session::create_named(config).expect("fresh create");
            fresh.load_workload(SCALE, kernel).expect("fresh load");
            fresh.restore(&snap).expect("restore");
            let stats = match fresh.run(BUDGET).expect("run") {
                RunStatus::Halted(stats) => *stats,
                RunStatus::Running { cycle, .. } => {
                    panic!("{kernel}/{config} still running at {cycle}")
                }
            };
            fresh.verify().expect("verify");
            let inspect = fresh.inspect().expect("inspect");

            assert_eq!(
                stats, direct_stats,
                "{kernel}/{config}: stepped+snapshotted+restored stats must be bit-identical"
            );
            assert_eq!(
                inspect.reg_digest, direct_digest,
                "{kernel}/{config}: register digest must match the direct run"
            );
            assert!(inspect.halted);
        }
    }
}

/// Session misuse produces typed errors, never panics: operations
/// before load, unknown names, out-of-range arguments.
#[test]
fn session_misuse_is_typed() {
    let mut s = Session::create_named("d").expect("create");
    assert!(matches!(s.run(1_000), Err(SessionError::NoProgram)));
    assert!(matches!(s.snapshot(), Err(SessionError::NoProgram)));
    assert!(matches!(
        s.load_workload(SCALE, "warp_drive"),
        Err(SessionError::UnknownWorkload(_))
    ));
    assert!(Session::create_named("e").is_err());
    s.load_workload(SCALE, "memset").expect("load");
    assert!(matches!(s.reg(128), Err(SessionError::InvalidArg(_))));
    assert!(matches!(
        s.load_workload(SCALE, "memset"),
        Err(SessionError::AlreadyLoaded)
    ));
}

/// Writes one raw frame (any header) and returns the server's reply
/// stream for inspection.
fn raw_frame(stream: &mut TcpStream, magic: &[u8; 4], version: u32, payload: &[u8]) {
    let mut frame = Vec::new();
    frame.extend_from_slice(magic);
    frame.extend_from_slice(&version.to_le_bytes());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(payload);
    stream.write_all(&frame).expect("raw frame write");
}

/// Reads the error kind out of the next reply frame.
fn next_error_kind(stream: &mut TcpStream) -> String {
    let payload = wire::read_frame(stream)
        .expect("reply frame")
        .expect("reply before EOF");
    assert!(payload.contains("\"ok\":false"), "error reply: {payload}");
    tm3270_obs::json::string_field(&payload, "error").expect("typed error kind")
}

/// Malformed frames against a live server produce typed error replies —
/// never a panic, never a hang. Fatal framing errors close the
/// connection; content errors (unknown op, bad fields) keep it open.
#[test]
fn malformed_wire_frames_get_typed_errors() {
    let (addr, shutdown, join) = start_server(ServerConfig::new().workers(1));

    // Unknown op: typed reply, connection survives (a ping follows).
    let mut stream = TcpStream::connect(addr).expect("connect");
    raw_frame(
        &mut stream,
        &WIRE_MAGIC,
        WIRE_VERSION,
        br#"{"id":7,"op":"warp"}"#,
    );
    assert_eq!(next_error_kind(&mut stream), "UnknownOp");
    raw_frame(
        &mut stream,
        &WIRE_MAGIC,
        WIRE_VERSION,
        br#"{"id":8,"op":"ping"}"#,
    );
    let pong = wire::read_frame(&mut stream).expect("pong").expect("open");
    assert!(
        pong.contains("\"pong\":true"),
        "survived unknown op: {pong}"
    );

    // Malformed JSON payload: typed, non-fatal.
    raw_frame(&mut stream, &WIRE_MAGIC, WIRE_VERSION, b"not json at all");
    assert_eq!(next_error_kind(&mut stream), "Malformed");

    // Bad magic: typed, fatal — the server closes after replying.
    let mut stream = TcpStream::connect(addr).expect("connect");
    raw_frame(&mut stream, b"NOPE", WIRE_VERSION, br#"{"op":"ping"}"#);
    assert_eq!(next_error_kind(&mut stream), "BadMagic");
    assert!(matches!(wire::read_frame(&mut stream), Ok(None)));

    // Version mismatch: typed, fatal.
    let mut stream = TcpStream::connect(addr).expect("connect");
    raw_frame(&mut stream, &WIRE_MAGIC, 99, br#"{"op":"ping"}"#);
    assert_eq!(next_error_kind(&mut stream), "VersionMismatch");

    // Truncated frame: header promises more bytes than arrive.
    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut frame = Vec::new();
    frame.extend_from_slice(&WIRE_MAGIC);
    frame.extend_from_slice(&WIRE_VERSION.to_le_bytes());
    frame.extend_from_slice(&100u32.to_le_bytes());
    frame.extend_from_slice(b"only ten b");
    stream.write_all(&frame).expect("truncated write");
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("half close");
    assert_eq!(next_error_kind(&mut stream), "Truncated");

    // Oversized length prefix: rejected before any allocation.
    let mut stream = TcpStream::connect(addr).expect("connect");
    raw_frame(&mut stream, &WIRE_MAGIC, WIRE_VERSION, b"");
    let _ = wire::read_frame(&mut stream); // drain the Malformed reply for ""
    let mut frame = Vec::new();
    frame.extend_from_slice(&WIRE_MAGIC);
    frame.extend_from_slice(&WIRE_VERSION.to_le_bytes());
    frame.extend_from_slice(&((MAX_FRAME_BYTES + 1) as u32).to_le_bytes());
    stream.write_all(&frame).expect("oversized header");
    assert_eq!(next_error_kind(&mut stream), "FrameTooLarge");

    shutdown.shutdown();
    join.join().expect("server thread");
}

/// The wire reader itself never panics on hostile bytes (unit-level
/// check of the same taxonomy the server test exercises end to end).
#[test]
fn wire_reader_taxonomy() {
    let mut bad = &b"XXXXAAAABBBB"[..];
    assert!(matches!(
        wire::read_frame(&mut bad),
        Err(WireError::BadMagic)
    ));
    let mut empty = &b""[..];
    assert!(matches!(wire::read_frame(&mut empty), Ok(None)));
    let mut cut = &b"TM3W"[..];
    assert!(matches!(
        wire::read_frame(&mut cut),
        Err(WireError::Truncated { .. })
    ));
}

/// Four concurrent served sessions (two connections, interleaved
/// round-robin on one worker) reproduce the direct runs byte for byte:
/// the streamed `cell` rows equal `wire::cell_json` of the direct
/// stats.
#[test]
fn concurrent_sessions_match_direct_runs_byte_for_byte() {
    let (addr, shutdown, join) = start_server(ServerConfig::new().workers(1).quantum(5_000));

    let jobs: Vec<(&str, &str)> = vec![
        ("memset", "a"),
        ("memset", "d"),
        ("memcpy", "a"),
        ("memcpy", "d"),
    ];
    let cells = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2)
            .map(|conn| {
                let jobs = &jobs;
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let mut out = Vec::new();
                    for (kernel, config) in jobs.iter().skip(conn).step_by(2) {
                        let sid = client.create(config).expect("create");
                        let load = client.load(sid, kernel).expect("load");
                        let run = client.run(sid, load.budget).expect("run");
                        assert!(run.halted, "{kernel}/{config} halts");
                        client.verify(sid).expect("verify");
                        client.close(sid).expect("close");
                        let cell_at = run.payload.find(",\"cell\":").expect("cell row");
                        out.push(run.payload[cell_at + 8..run.payload.len() - 1].to_string());
                    }
                    out
                })
            })
            .collect();
        let per_conn: Vec<Vec<String>> = handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect();
        // Re-interleave to job order.
        let mut cells = vec![String::new(); jobs.len()];
        for (conn, chunk) in per_conn.into_iter().enumerate() {
            for (k, cell) in chunk.into_iter().enumerate() {
                cells[conn + 2 * k] = cell;
            }
        }
        cells
    });

    for ((kernel, config), served) in jobs.iter().zip(&cells) {
        let (stats, _) = direct_run(config, kernel);
        let config_name = config_named(config).expect("config").name;
        let direct = wire::cell_json(kernel, config_name, &stats);
        assert_eq!(served, &direct, "{kernel}/{config} served row diverged");
    }

    shutdown.shutdown();
    join.join().expect("server thread");
}

/// Fairness: a deliberately hot session (mpeg2_a, ~1.9M cycles) running
/// with a large budget on a single worker does not delay small-budget
/// peers — three memset sessions created *after* the hot run started
/// all complete before the hot session's final frame arrives.
#[test]
fn hot_session_does_not_starve_small_peers() {
    let (addr, shutdown, join) = start_server(ServerConfig::new().workers(1).quantum(20_000));

    // Start the hot run and wait for its first progress frame, which
    // proves the run is live on the worker before the peers exist.
    let mut hot = Client::connect(addr).expect("hot connect");
    let hot_sid = hot.create("a").expect("hot create");
    let load = hot.load(hot_sid, "mpeg2_a").expect("hot load");
    hot.send_raw(&format!(
        "{{\"id\":42,\"op\":\"run\",\"session\":{hot_sid},\"budget\":{},\"stream\":1}}",
        load.budget
    ))
    .expect("hot run request");
    let first = hot.recv_raw().expect("first hot frame");
    assert!(
        first.contains("\"event\":\"progress\""),
        "hot run must still be in flight after one quantum: {first}"
    );

    // Three small peers on a second connection, created after the hot
    // run started; each must run to completion while the hot session
    // still holds the worker's rotation.
    let mut peers = Client::connect(addr).expect("peer connect");
    let mut peer_done = Vec::new();
    for _ in 0..3 {
        let sid = peers.create("d").expect("peer create");
        let load = peers.load(sid, "memset").expect("peer load");
        let run = peers.run(sid, load.budget).expect("peer run");
        assert!(run.halted, "peer halts");
        peers.verify(sid).expect("peer verify");
        peer_done.push(Instant::now());
    }

    // Drain the hot stream to its final frame; it must arrive after
    // every peer completed (an unfair scheduler would have emitted it
    // before the peers were even created).
    let hot_final = loop {
        let frame = hot.recv_raw().expect("hot frame");
        if frame.contains("\"event\":\"progress\"") {
            continue;
        }
        break frame;
    };
    let hot_done = Instant::now();
    assert!(
        hot_final.contains("\"halted\":true"),
        "hot run halts: {hot_final}"
    );
    let slices: u64 = tm3270_obs::json::u64_field(&hot_final, "slices").expect("slices");
    assert!(
        slices > 10,
        "hot run was genuinely quantum-sliced: {slices}"
    );
    for (i, done) in peer_done.iter().enumerate() {
        assert!(
            *done <= hot_done,
            "peer {i} finished only after the hot session"
        );
    }
    hot.verify(hot_sid).expect("hot verify");

    shutdown.shutdown();
    join.join().expect("server thread");
}

/// Graceful shutdown checkpoints live sessions through the TM3S
/// container, and the checkpoint restores into a fresh session that
/// finishes bit-identically.
#[test]
fn shutdown_checkpoints_live_sessions() {
    let dir = std::env::temp_dir().join(format!("tm3270_session_ckpt_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("checkpoint dir");

    let (addr, shutdown, join) = start_server(ServerConfig::new().workers(1).checkpoint_dir(&dir));
    let mut client = Client::connect(addr).expect("connect");
    let sid = client.create("d").expect("create");
    client.load(sid, "memset").expect("load");
    client
        .request(&format!("\"op\":\"step\",\"session\":{sid},\"count\":64"))
        .expect("step");

    shutdown.shutdown();
    let report = join.join().expect("server thread");
    assert_eq!(report.checkpointed, 1, "one live session checkpointed");

    let path = dir.join(format!("session-{sid}.tm3s"));
    let bytes = std::fs::read(&path).expect("checkpoint file");
    let snapshot = tm3270_core::Snapshot::from_bytes(bytes);

    let (direct_stats, _) = direct_run("d", "memset");
    let mut resumed = Session::create_named("d").expect("create");
    resumed.load_workload(SCALE, "memset").expect("load");
    resumed.restore(&snapshot).expect("restore checkpoint");
    let stats = match resumed.run(BUDGET).expect("run") {
        RunStatus::Halted(stats) => *stats,
        RunStatus::Running { .. } => panic!("restored session must halt"),
    };
    assert_eq!(
        stats, direct_stats,
        "checkpointed session resumes bit-identically"
    );
    resumed.verify().expect("verify");

    std::fs::remove_dir_all(&dir).ok();
}
